//! Semantic analysis: resolves a parsed [`SelectStmt`] against the catalog
//! into a validated [`QueryPlan`].
//!
//! Everything a user can get wrong — unknown dataset, a score the dataset
//! cannot serve, a confidence of 1.3, a window longer than the video — is
//! caught here with a spanned diagnostic (and a "did you mean" hint where
//! a near-miss candidate exists). Execution never re-validates.

use crate::ast::{ScoreCall, SelectStmt, Target};
use crate::catalog::{
    all_class_names, class_by_name, compatible_score, source_by_name, source_names, ScoreFn,
    SourceEntry,
};
use crate::error::{suggest, ErrorKind, EvqlError};
use crate::plan::{Engine, PlanTarget, QueryPlan};
use crate::token::Span;

/// Session-level defaults that `SET` can change.
#[derive(Debug, Clone)]
pub struct SessionSettings {
    /// Catalog scale divisor: frame counts are divided by this.
    pub scale: usize,
    /// Default probability threshold when a query has no `WITH CONFIDENCE`.
    pub confidence: f64,
    /// Default dataset build seed (0 = the source's own default).
    pub seed: u64,
    /// Default window sampling fraction (§3.4 uses 10 %).
    pub sample: f64,
    /// Default Phase-2 batch size `b`.
    pub batch: usize,
    /// Default ψ re-sort period.
    pub resort: usize,
}

impl Default for SessionSettings {
    fn default() -> Self {
        SessionSettings {
            // Interactive default: 1/8 of the (already 1/400-scaled)
            // catalog so a query answers in seconds on a laptop CPU.
            scale: 8,
            confidence: 0.9,
            seed: 0,
            sample: 0.1,
            batch: 8,
            resort: 10,
        }
    }
}

/// Names `SET` accepts (used for suggestions and `SHOW SETTINGS`).
pub const SETTING_NAMES: [&str; 6] = ["scale", "confidence", "seed", "sample", "batch", "resort"];

impl SessionSettings {
    /// Applies `SET name = value`; returns a description of the change.
    pub fn apply(
        &mut self,
        name: &str,
        value: &crate::ast::Literal,
        span: Span,
    ) -> Result<String, EvqlError> {
        let err = |detail: String| {
            Err(EvqlError::new(
                ErrorKind::OutOfRange {
                    what: format!("SET {name}"),
                    detail,
                },
                value.span,
            ))
        };
        match name.to_ascii_lowercase().as_str() {
            "scale" => match value.as_u64() {
                Some(v) if v >= 1 => {
                    self.scale = v as usize;
                    Ok(format!("scale = {v} (datasets shrink by 1/{v})"))
                }
                _ => err("expected an integer ≥ 1".into()),
            },
            "confidence" => match value.as_f64() {
                Some(v) if v > 0.0 && v < 1.0 => {
                    self.confidence = v;
                    Ok(format!("confidence = {v}"))
                }
                _ => err("expected a number in (0, 1)".into()),
            },
            "seed" => match value.as_u64() {
                Some(v) => {
                    self.seed = v;
                    Ok(format!("seed = {v}"))
                }
                _ => err("expected a non-negative integer".into()),
            },
            "sample" => match value.as_f64() {
                Some(v) if v > 0.0 && v <= 1.0 => {
                    self.sample = v;
                    Ok(format!("sample = {v}"))
                }
                _ => err("expected a fraction in (0, 1]".into()),
            },
            "batch" => match value.as_u64() {
                Some(v) if v >= 1 => {
                    self.batch = v as usize;
                    Ok(format!("batch = {v}"))
                }
                _ => err("expected an integer ≥ 1".into()),
            },
            "resort" => match value.as_u64() {
                Some(v) if v >= 1 => {
                    self.resort = v as usize;
                    Ok(format!("resort = {v}"))
                }
                _ => err("expected an integer ≥ 1".into()),
            },
            other => Err(EvqlError::new(
                ErrorKind::Unknown {
                    what: "setting",
                    name: other.into(),
                    suggestion: suggest(other, SETTING_NAMES),
                },
                span,
            )),
        }
    }
}

/// The option names a `WITH` clause accepts.
const OPTION_NAMES: [&str; 10] = [
    "confidence",
    "sample",
    "step",
    "seed",
    "batch",
    "resort",
    "window",
    "budget",
    "deadline",
    "flaky",
];

/// Analyzes a `SELECT` statement into an executable plan.
pub fn analyze(stmt: &SelectStmt, session: &SessionSettings) -> Result<QueryPlan, EvqlError> {
    // -- dataset --
    let source = source_by_name(&stmt.source).ok_or_else(|| {
        let names = source_names();
        EvqlError::new(
            ErrorKind::Unknown {
                what: "dataset",
                name: stmt.source.clone(),
                suggestion: suggest(&stmt.source, names.iter().map(|s| s.as_str())),
            },
            stmt.source_span,
        )
    })?;

    // -- score --
    let score = match &stmt.score {
        None => source.default_score,
        Some(call) => resolve_score(call, &source)?,
    };

    // -- engine --
    let engine = match &stmt.engine {
        None => Engine::Everest,
        Some((name, span)) => Engine::by_name(name).ok_or_else(|| {
            let all: Vec<&str> = Engine::all()
                .iter()
                .flat_map(|e| e.aliases().iter().copied())
                .collect();
            EvqlError::new(
                ErrorKind::Unknown {
                    what: "engine",
                    name: name.clone(),
                    suggestion: suggest(name, all),
                },
                *span,
            )
        })?,
    };

    // -- options --
    let mut thres = session.confidence;
    let mut sample = session.sample;
    let mut quant_step = score.default_step();
    let mut seed = session.seed;
    let mut batch = session.batch;
    let mut resort = session.resort;
    let mut stream_window: Option<(usize, Span)> = None;
    let mut stream_budget: Option<(usize, Span)> = None;
    let mut deadline: Option<(f64, Span)> = None;
    let mut flaky_seed: Option<(u64, Span)> = None;
    for opt in &stmt.options {
        let lname = opt.name.to_ascii_lowercase();
        let bad = |detail: &str| {
            EvqlError::new(
                ErrorKind::OutOfRange {
                    what: format!("option `{}`", opt.name),
                    detail: detail.into(),
                },
                opt.value.span,
            )
        };
        match lname.as_str() {
            "confidence" | "thres" => {
                thres = opt
                    .value
                    .as_f64()
                    .filter(|v| *v > 0.0 && *v < 1.0)
                    .ok_or_else(|| bad("expected a probability in (0, 1)"))?;
            }
            "sample" => {
                sample = opt
                    .value
                    .as_f64()
                    .filter(|v| *v > 0.0 && *v <= 1.0)
                    .ok_or_else(|| bad("expected a fraction in (0, 1]"))?;
            }
            "step" => {
                quant_step = opt
                    .value
                    .as_f64()
                    .filter(|v| *v > 0.0 && v.is_finite())
                    .ok_or_else(|| bad("expected a positive quantization step"))?;
            }
            "seed" => {
                seed = opt
                    .value
                    .as_u64()
                    .ok_or_else(|| bad("expected an integer seed"))?;
            }
            "batch" => {
                batch = opt
                    .value
                    .as_u64()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| bad("expected an integer ≥ 1"))?
                    as usize;
            }
            "resort" => {
                resort = opt
                    .value
                    .as_u64()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| bad("expected an integer ≥ 1"))?
                    as usize;
            }
            "window" => {
                let w = opt
                    .value
                    .as_u64()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| bad("expected a window length of at least 1 frame"))?
                    as usize;
                stream_window = Some((w, opt.name_span));
            }
            "budget" => {
                let b = opt
                    .value
                    .as_u64()
                    .ok_or_else(|| bad("expected a per-emit cleaning budget ≥ 0"))?
                    as usize;
                stream_budget = Some((b, opt.name_span));
            }
            "deadline" => {
                let d = opt
                    .value
                    .as_f64()
                    .filter(|v| *v > 0.0 && v.is_finite())
                    .ok_or_else(|| bad("expected a positive deadline in simulated seconds"))?;
                deadline = Some((d, opt.name_span));
            }
            "flaky" => {
                let s = opt
                    .value
                    .as_u64()
                    .ok_or_else(|| bad("expected an integer fault-injection seed"))?;
                flaky_seed = Some((s, opt.name_span));
            }
            other => {
                return Err(EvqlError::new(
                    ErrorKind::Unknown {
                        what: "option",
                        name: other.into(),
                        suggestion: suggest(other, OPTION_NAMES),
                    },
                    opt.name_span,
                ))
            }
        }
    }

    // -- target --
    let n_frames = source.scaled_frames(session.scale);
    let target = match stmt.target {
        Target::Frames => PlanTarget::Frames,
        Target::Windows {
            len,
            len_span,
            slide,
        } => {
            if len == 0 {
                return Err(EvqlError::new(
                    ErrorKind::OutOfRange {
                        what: "window length".into(),
                        detail: "must be at least 1 frame".into(),
                    },
                    len_span,
                ));
            }
            if len as usize > n_frames {
                return Err(EvqlError::new(
                    ErrorKind::OutOfRange {
                        what: "window length".into(),
                        detail: format!(
                            "window of {len} frames exceeds the video ({n_frames} frames at scale 1/{})",
                            session.scale
                        ),
                    },
                    len_span,
                ));
            }
            let slide_frames = match slide {
                None => len,
                Some((s, s_span)) => {
                    if s == 0 || s > len {
                        return Err(EvqlError::new(
                            ErrorKind::OutOfRange {
                                what: "slide".into(),
                                detail: format!("must be between 1 and the window length ({len})"),
                            },
                            s_span,
                        ));
                    }
                    s
                }
            };
            if engine != Engine::Everest && engine != Engine::Scan {
                return Err(EvqlError::new(
                    ErrorKind::Incompatible(format!(
                        "engine `{}` only supports frame queries; window queries \
                         need `everest` or `scan`",
                        engine.display()
                    )),
                    stmt.engine.as_ref().map_or(len_span, |(_, s)| *s),
                ));
            }
            PlanTarget::Windows {
                len: len as usize,
                slide: slide_frames as usize,
                sample_frac: sample,
            }
        }
    };

    // -- EVERY … EMIT (continuous queries) --
    if let Some((stride, stride_span)) = stmt.every {
        if stride == 0 {
            return Err(EvqlError::new(
                ErrorKind::OutOfRange {
                    what: "EVERY".into(),
                    detail: "the emit stride must be at least 1 frame".into(),
                },
                stride_span,
            ));
        }
        if stride as usize > n_frames {
            return Err(EvqlError::new(
                ErrorKind::OutOfRange {
                    what: "EVERY".into(),
                    detail: format!(
                        "an emit stride of {stride} frames exceeds the video \
                         ({n_frames} frames at scale 1/{}) — the stream would never emit",
                        session.scale
                    ),
                },
                stride_span,
            ));
        }
        if !matches!(target, PlanTarget::Frames) {
            return Err(EvqlError::new(
                ErrorKind::Incompatible(
                    "EVERY … EMIT streams frame queries; window targets are batch-only \
                     (stream a frame query WITH WINDOW <w> for sliding windows)"
                        .into(),
                ),
                stride_span,
            ));
        }
        if engine != Engine::Everest {
            return Err(EvqlError::new(
                ErrorKind::Incompatible(format!(
                    "engine `{}` cannot stream; EVERY … EMIT needs the `everest` \
                     engine's incremental joint CDF",
                    engine.display()
                )),
                stmt.engine.as_ref().map_or(stride_span, |(_, s)| *s),
            ));
        }
    } else {
        if let Some((_, span)) = stream_window {
            return Err(EvqlError::new(
                ErrorKind::Incompatible(
                    "option `window` configures a continuous query; add EVERY <n> FRAMES EMIT \
                     (batch window queries use `WINDOWS OF <len> FRAMES`)"
                        .into(),
                ),
                span,
            ));
        }
        if let Some((_, span)) = stream_budget {
            return Err(EvqlError::new(
                ErrorKind::Incompatible(
                    "option `budget` configures a continuous query; add EVERY <n> FRAMES EMIT"
                        .into(),
                ),
                span,
            ));
        }
    }

    // -- budget knobs (WITHIN … ORACLE CALLS, WITH DEADLINE/FLAKY) --
    // They shape Phase-2 cleaning, so only the Everest engine honors
    // them; silently ignoring a budget on a baseline engine would be
    // worse than rejecting it.
    if engine != Engine::Everest {
        let knob = stmt
            .within
            .map(|(_, s)| ("WITHIN … ORACLE CALLS", s))
            .or(deadline.map(|(_, s)| ("option `deadline`", s)))
            .or(flaky_seed.map(|(_, s)| ("option `flaky`", s)));
        if let Some((what, span)) = knob {
            return Err(EvqlError::new(
                ErrorKind::Incompatible(format!(
                    "{what} bounds Phase-2 oracle cleaning; engine `{}` has no \
                     cleaning phase (use the `everest` engine)",
                    engine.display()
                )),
                span,
            ));
        }
    }

    // -- K --
    if stmt.k == 0 {
        return Err(EvqlError::new(
            ErrorKind::OutOfRange {
                what: "K".into(),
                detail: "must be at least 1".into(),
            },
            stmt.k_span,
        ));
    }
    let mut plan = QueryPlan {
        source,
        score,
        k: stmt.k as usize,
        target,
        engine,
        thres,
        seed,
        quant_step,
        batch,
        resort_period: resort,
        scale_divisor: session.scale,
        n_frames,
        emit_every: stmt.every.map(|(n, _)| n as usize),
        stream_window: stream_window.map(|(w, _)| w),
        stream_budget: stream_budget.map(|(b, _)| b),
        max_oracle_calls: stmt.within.map(|(n, _)| n as usize),
        deadline: deadline.map(|(d, _)| d),
        flaky_seed: flaky_seed.map(|(s, _)| s),
    };
    let n_items = plan.n_items();
    if plan.k > n_items {
        return Err(EvqlError::new(
            ErrorKind::OutOfRange {
                what: "K".into(),
                detail: format!(
                    "K={} exceeds the {} rankable {} at scale 1/{}",
                    plan.k,
                    n_items,
                    match plan.target {
                        PlanTarget::Frames => "frames",
                        PlanTarget::Windows { .. } => "windows",
                    },
                    session.scale
                ),
            },
            stmt.k_span,
        ));
    }
    // Hygiene: the certain-result condition needs at least one oracle call
    // per answer; a K of the full item count degenerates to scan-and-test.
    // Continuous queries are exempt — mid-stream prefixes still rank fewer
    // than K frames, and streaming requires the Everest engine anyway.
    // Budgeted queries are exempt too: a scan would ignore the caps the
    // user asked for, while budgeted cleaning still terminates.
    if plan.k == n_items
        && plan.engine == Engine::Everest
        && plan.emit_every.is_none()
        && plan.max_oracle_calls.is_none()
        && plan.deadline.is_none()
        && plan.flaky_seed.is_none()
    {
        plan.engine = Engine::Scan;
    }
    Ok(plan)
}

/// Analyzes a `SELECT SKYLINE` statement into a [`crate::plan::SkylinePlan`].
pub fn analyze_skyline(
    stmt: &crate::ast::SkylineStmt,
    session: &SessionSettings,
) -> Result<crate::plan::SkylinePlan, EvqlError> {
    let source = source_by_name(&stmt.source).ok_or_else(|| {
        let names = source_names();
        EvqlError::new(
            ErrorKind::Unknown {
                what: "dataset",
                name: stmt.source.clone(),
                suggestion: suggest(&stmt.source, names.iter().map(|s| s.as_str())),
            },
            stmt.source_span,
        )
    })?;

    // Resolve dimensions: explicit list, or the dataset's default pair.
    let scores: Vec<ScoreFn> = if stmt.scores.is_empty() {
        match &source.kind {
            crate::catalog::SourceKind::Counting(spec) => {
                vec![ScoreFn::Count(spec.object_class), ScoreFn::Coverage]
            }
            _ => {
                return Err(EvqlError::new(
                    ErrorKind::Incompatible(format!(
                        "dataset `{}` has no default skyline dimensions; \
                         only the counting datasets pair count(<class>) with \
                         coverage(). Spell the dimensions out: \
                         SELECT SKYLINE OF f1(), f2() FROM …",
                        source.name
                    )),
                    stmt.skyline_span,
                ))
            }
        }
    } else {
        if !(2..=3).contains(&stmt.scores.len()) {
            return Err(EvqlError::new(
                ErrorKind::OutOfRange {
                    what: "SKYLINE OF".into(),
                    detail: format!("needs 2 or 3 scoring dimensions, got {}", stmt.scores.len()),
                },
                stmt.skyline_span,
            ));
        }
        let mut out = Vec::with_capacity(stmt.scores.len());
        for call in &stmt.scores {
            let s = resolve_score(call, &source)?;
            if out.contains(&s) {
                return Err(EvqlError::new(
                    ErrorKind::Incompatible(format!("duplicate skyline dimension {}", s.display())),
                    call.span,
                ));
            }
            out.push(s);
        }
        out
    };

    // Options: CONFIDENCE / SEED / BATCH only.
    let mut thres = session.confidence;
    let mut seed = session.seed;
    let mut batch = session.batch;
    for opt in &stmt.options {
        let bad = |detail: &str| {
            EvqlError::new(
                ErrorKind::OutOfRange {
                    what: format!("option `{}`", opt.name),
                    detail: detail.into(),
                },
                opt.value.span,
            )
        };
        match opt.name.to_ascii_lowercase().as_str() {
            "confidence" | "thres" => {
                thres = opt
                    .value
                    .as_f64()
                    .filter(|v| *v > 0.0 && *v < 1.0)
                    .ok_or_else(|| bad("expected a probability in (0, 1)"))?;
            }
            "seed" => {
                seed = opt
                    .value
                    .as_u64()
                    .ok_or_else(|| bad("expected an integer seed"))?;
            }
            "batch" => {
                batch = opt
                    .value
                    .as_u64()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| bad("expected an integer ≥ 1"))?
                    as usize;
            }
            other => {
                return Err(EvqlError::new(
                    ErrorKind::Unknown {
                        what: "skyline option",
                        name: other.into(),
                        suggestion: suggest(other, ["confidence", "seed", "batch"]),
                    },
                    opt.name_span,
                ))
            }
        }
    }

    let n_frames = source.scaled_frames(session.scale);
    Ok(crate::plan::SkylinePlan {
        source,
        scores,
        thres,
        seed,
        batch,
        scale_divisor: session.scale,
        n_frames,
    })
}

fn resolve_score(call: &ScoreCall, source: &SourceEntry) -> Result<ScoreFn, EvqlError> {
    let score = match call.name.to_ascii_lowercase().as_str() {
        "count" => {
            if call.args.len() != 1 {
                return Err(EvqlError::new(
                    ErrorKind::OutOfRange {
                        what: "count(...)".into(),
                        detail: format!("takes exactly one object class, got {}", call.args.len()),
                    },
                    call.span,
                ));
            }
            let arg = &call.args[0];
            let word = arg.as_word().ok_or_else(|| {
                EvqlError::new(
                    ErrorKind::OutOfRange {
                        what: "count(...)".into(),
                        detail: "the object class must be a name, e.g. count(car)".into(),
                    },
                    arg.span,
                )
            })?;
            let class = class_by_name(word).ok_or_else(|| {
                EvqlError::new(
                    ErrorKind::Unknown {
                        what: "object class",
                        name: word.into(),
                        suggestion: suggest(word, all_class_names()),
                    },
                    arg.span,
                )
            })?;
            ScoreFn::Count(class)
        }
        "tailgating" | "sentiment" | "coverage" => {
            if !call.args.is_empty() {
                return Err(EvqlError::new(
                    ErrorKind::OutOfRange {
                        what: format!("{}()", call.name),
                        detail: "takes no arguments".into(),
                    },
                    call.span,
                ));
            }
            match call.name.to_ascii_lowercase().as_str() {
                "tailgating" => ScoreFn::Tailgating,
                "sentiment" => ScoreFn::Sentiment,
                _ => ScoreFn::Coverage,
            }
        }
        other => {
            return Err(EvqlError::new(
                ErrorKind::Unknown {
                    what: "scoring function",
                    name: other.into(),
                    suggestion: suggest(other, ["count", "coverage", "tailgating", "sentiment"]),
                },
                call.name_span,
            ))
        }
    };
    compatible_score(source, score)
        .map_err(|msg| EvqlError::new(ErrorKind::Incompatible(msg), call.span))?;
    Ok(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use everest_video::scene::ObjectClass;

    fn plan_of(src: &str) -> Result<QueryPlan, EvqlError> {
        let stmt = match parse(src).unwrap() {
            crate::ast::Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        };
        analyze(&stmt, &SessionSettings::default())
    }

    #[test]
    fn defaults_fill_in() {
        let p = plan_of("SELECT TOP 10 FRAMES FROM Archie").unwrap();
        assert_eq!(
            p.score,
            ScoreFn::Count(ObjectClass::Car),
            "dataset default score"
        );
        assert_eq!(p.engine, Engine::Everest);
        assert_eq!(p.thres, 0.9);
        assert_eq!(p.quant_step, 1.0);
        assert_eq!(p.batch, 8);
    }

    #[test]
    fn options_override_defaults() {
        let p = plan_of(
            "SELECT TOP 10 FRAMES FROM Archie WITH CONFIDENCE 0.75, SEED 9, BATCH 2, RESORT 5",
        )
        .unwrap();
        assert_eq!(p.thres, 0.75);
        assert_eq!(p.seed, 9);
        assert_eq!(p.batch, 2);
        assert_eq!(p.resort_period, 5);
    }

    #[test]
    fn unknown_dataset_suggests() {
        let e = plan_of("SELECT TOP 10 FRAMES FROM Grand-Chanel").unwrap_err();
        assert!(
            e.message().contains("did you mean `Grand-Canal`"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn unknown_option_suggests() {
        let e = plan_of("SELECT TOP 10 FRAMES FROM Archie WITH CONFIDANCE 0.9").unwrap_err();
        assert!(
            e.message().contains("did you mean `confidence`"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn unknown_engine_suggests() {
        let e = plan_of("SELECT TOP 10 FRAMES FROM Archie USING noscop").unwrap_err();
        assert!(
            e.message().contains("did you mean `noscope`"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn wrong_class_for_dataset_is_incompatible() {
        let e = plan_of("SELECT TOP 10 FRAMES FROM Grand-Canal SCORE count(car)").unwrap_err();
        assert!(
            e.message().contains("annotated for `boat`"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn score_arity_is_checked() {
        let e = plan_of("SELECT TOP 10 FRAMES FROM Archie SCORE count()").unwrap_err();
        assert!(e.message().contains("exactly one"), "{}", e.message());
        let e = plan_of("SELECT TOP 10 FRAMES FROM Dashcam-California SCORE tailgating(5)")
            .unwrap_err();
        assert!(e.message().contains("no arguments"), "{}", e.message());
    }

    #[test]
    fn confidence_must_be_a_probability() {
        for bad in ["0", "1", "1.5", "car"] {
            let q = format!("SELECT TOP 10 FRAMES FROM Archie WITH CONFIDENCE {bad}");
            assert!(plan_of(&q).is_err(), "CONFIDENCE {bad} should be rejected");
        }
    }

    #[test]
    fn k_zero_and_k_too_large_rejected() {
        let e = plan_of("SELECT TOP 0 FRAMES FROM Archie").unwrap_err();
        assert!(e.message().contains("at least 1"), "{}", e.message());
        let e = plan_of("SELECT TOP 99999999 FRAMES FROM Archie").unwrap_err();
        assert!(e.message().contains("exceeds"), "{}", e.message());
    }

    #[test]
    fn window_length_validated_against_video() {
        let e = plan_of("SELECT TOP 2 WINDOWS OF 999999 FRAMES FROM Archie").unwrap_err();
        assert!(e.message().contains("exceeds the video"), "{}", e.message());
    }

    #[test]
    fn slide_must_not_exceed_length() {
        let e = plan_of("SELECT TOP 2 WINDOWS OF 30 FRAMES SLIDE 31 FROM Archie").unwrap_err();
        assert!(
            e.message().contains("between 1 and the window length"),
            "{}",
            e.message()
        );
        let p = plan_of("SELECT TOP 2 WINDOWS OF 30 FRAMES SLIDE 30 FROM Archie").unwrap();
        match p.target {
            PlanTarget::Windows { len, slide, .. } => {
                assert_eq!((len, slide), (30, 30));
            }
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn default_slide_is_tumbling() {
        let p = plan_of("SELECT TOP 2 WINDOWS OF 60 FRAMES FROM Archie").unwrap();
        match p.target {
            PlanTarget::Windows {
                len,
                slide,
                sample_frac,
            } => {
                assert_eq!((len, slide), (60, 60));
                assert_eq!(sample_frac, 0.1, "session default sampling");
            }
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn windows_need_a_capable_engine() {
        let e = plan_of("SELECT TOP 2 WINDOWS OF 30 FRAMES FROM Archie USING hog").unwrap_err();
        assert!(
            e.message().contains("only supports frame queries"),
            "{}",
            e.message()
        );
        assert!(plan_of("SELECT TOP 2 WINDOWS OF 30 FRAMES FROM Archie USING scan").is_ok());
    }

    #[test]
    fn continuous_scores_pick_up_udf_step() {
        let p = plan_of("SELECT TOP 5 FRAMES FROM Dashcam-California").unwrap();
        assert_eq!(p.score, ScoreFn::Tailgating);
        assert_eq!(
            p.quant_step,
            everest_models::depth::TAILGATING_QUANTIZATION_STEP
        );
        let p = plan_of("SELECT TOP 5 FRAMES FROM Dashcam-California WITH STEP 0.1").unwrap();
        assert_eq!(p.quant_step, 0.1);
    }

    #[test]
    fn k_equal_to_item_count_degrades_to_scan() {
        // At default scale Archie floors to 2000 frames; K = 2000 must not
        // try to "clean" its way to the full set one batch at a time.
        let n = source_by_name("Archie").unwrap().scaled_frames(8);
        let p = plan_of(&format!("SELECT TOP {n} FRAMES FROM Archie")).unwrap();
        assert_eq!(p.engine, Engine::Scan);
    }

    #[test]
    fn settings_apply_and_validate() {
        let mut s = SessionSettings::default();
        let lit = |v: crate::ast::LiteralValue| crate::ast::Literal {
            value: v,
            span: Span::new(0, 0),
        };
        s.apply(
            "scale",
            &lit(crate::ast::LiteralValue::Int(2)),
            Span::new(0, 0),
        )
        .unwrap();
        assert_eq!(s.scale, 2);
        s.apply(
            "confidence",
            &lit(crate::ast::LiteralValue::Float(0.99)),
            Span::new(0, 0),
        )
        .unwrap();
        assert_eq!(s.confidence, 0.99);
        assert!(s
            .apply(
                "confidence",
                &lit(crate::ast::LiteralValue::Float(2.0)),
                Span::new(0, 0)
            )
            .is_err());
        let err = s
            .apply(
                "scal",
                &lit(crate::ast::LiteralValue::Int(2)),
                Span::new(0, 0),
            )
            .unwrap_err();
        assert!(
            err.message().contains("did you mean `scale`"),
            "{}",
            err.message()
        );
    }

    use crate::catalog::source_by_name;
    use crate::token::Span;

    // ---- EVERY … EMIT (continuous queries) ----

    #[test]
    fn streaming_plan_resolves_every_window_budget() {
        let p = plan_of(
            "SELECT TOP 5 FRAMES FROM Archie EVERY 100 FRAMES EMIT WITH WINDOW 500, BUDGET 16",
        )
        .unwrap();
        assert_eq!(p.emit_every, Some(100));
        assert_eq!(p.stream_window, Some(500));
        assert_eq!(p.stream_budget, Some(16));
        assert_eq!(p.engine, Engine::Everest);
        let p = plan_of("SELECT TOP 5 FRAMES FROM Archie EVERY 100 FRAMES EMIT").unwrap();
        assert_eq!((p.stream_window, p.stream_budget), (None, None));
    }

    #[test]
    fn every_zero_stride_rejected_with_span() {
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY 0 FRAMES EMIT";
        let stmt = match parse(src).unwrap() {
            crate::ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let e = analyze(&stmt, &SessionSettings::default()).unwrap_err();
        assert!(e.message().contains("at least 1 frame"), "{}", e.message());
        assert_eq!(
            &src[e.span.start..e.span.end],
            "0",
            "span must pin the stride"
        );
    }

    #[test]
    fn every_stride_beyond_video_rejected() {
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie EVERY 99999999 FRAMES EMIT").unwrap_err();
        assert!(e.message().contains("would never emit"), "{}", e.message());
    }

    #[test]
    fn every_incompatible_with_window_targets_and_baseline_engines() {
        let e = plan_of("SELECT TOP 2 WINDOWS OF 30 FRAMES FROM Archie EVERY 10 FRAMES EMIT")
            .unwrap_err();
        assert!(e.message().contains("batch-only"), "{}", e.message());
        let e =
            plan_of("SELECT TOP 5 FRAMES FROM Archie USING scan EVERY 10 FRAMES EMIT").unwrap_err();
        assert!(e.message().contains("cannot stream"), "{}", e.message());
    }

    #[test]
    fn stream_options_require_every_clause() {
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie WITH WINDOW 500").unwrap_err();
        assert!(
            e.message().contains("EVERY <n> FRAMES EMIT"),
            "{}",
            e.message()
        );
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie WITH BUDGET 4").unwrap_err();
        assert!(
            e.message().contains("EVERY <n> FRAMES EMIT"),
            "{}",
            e.message()
        );
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie EVERY 10 FRAMES EMIT WITH WINDOW 0")
            .unwrap_err();
        assert!(e.message().contains("at least 1 frame"), "{}", e.message());
    }

    #[test]
    fn streaming_k_equal_to_item_count_keeps_everest() {
        // mid-stream prefixes rank fewer than K frames, so the scan
        // degrade would break continuous emission
        let n = source_by_name("Archie").unwrap().scaled_frames(8);
        let p = plan_of(&format!(
            "SELECT TOP {n} FRAMES FROM Archie EVERY {n} FRAMES EMIT"
        ))
        .unwrap();
        assert_eq!(p.engine, Engine::Everest);
    }

    // ---- WITHIN / DEADLINE / FLAKY (budgeted, fault-injected queries) ----

    #[test]
    fn budget_knobs_resolve_into_the_plan() {
        let p = plan_of(
            "SELECT TOP 5 FRAMES FROM Archie WITHIN 200 ORACLE CALLS \
             WITH DEADLINE 2.5, FLAKY 7",
        )
        .unwrap();
        assert_eq!(p.max_oracle_calls, Some(200));
        assert_eq!(p.deadline, Some(2.5));
        assert_eq!(p.flaky_seed, Some(7));
        let p = plan_of("SELECT TOP 5 FRAMES FROM Archie").unwrap();
        assert_eq!(
            (p.max_oracle_calls, p.deadline, p.flaky_seed),
            (None, None, None)
        );
    }

    #[test]
    fn deadline_must_be_positive_and_finite() {
        for bad in ["0", "0.0", "car"] {
            let q = format!("SELECT TOP 5 FRAMES FROM Archie WITH DEADLINE {bad}");
            assert!(plan_of(&q).is_err(), "DEADLINE {bad} should be rejected");
        }
    }

    #[test]
    fn budget_knobs_require_the_everest_engine() {
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie USING scan WITHIN 10 ORACLE CALLS")
            .unwrap_err();
        assert!(e.message().contains("no cleaning phase"), "{}", e.message());
        let e =
            plan_of("SELECT TOP 5 FRAMES FROM Archie USING scan WITH DEADLINE 1.0").unwrap_err();
        assert!(e.message().contains("no cleaning phase"), "{}", e.message());
        let e = plan_of("SELECT TOP 5 FRAMES FROM Archie USING noscope WITH FLAKY 3").unwrap_err();
        assert!(e.message().contains("no cleaning phase"), "{}", e.message());
    }

    #[test]
    fn budgeted_k_equal_to_item_count_keeps_everest() {
        // the scan degrade would silently drop the user's cap
        let n = source_by_name("Archie").unwrap().scaled_frames(8);
        let p = plan_of(&format!(
            "SELECT TOP {n} FRAMES FROM Archie WITHIN 10 ORACLE CALLS"
        ))
        .unwrap();
        assert_eq!(p.engine, Engine::Everest);
    }

    // ---- skyline analysis ----

    fn skyline_plan_of(src: &str) -> Result<crate::plan::SkylinePlan, EvqlError> {
        let stmt = match parse(src).unwrap() {
            crate::ast::Statement::Skyline(s) => s,
            other => panic!("expected SKYLINE, got {other:?}"),
        };
        analyze_skyline(&stmt, &SessionSettings::default())
    }

    #[test]
    fn skyline_default_pair_on_counting_datasets() {
        let p = skyline_plan_of("SELECT SKYLINE FROM Grand-Canal").unwrap();
        assert_eq!(
            p.scores,
            vec![ScoreFn::Count(ObjectClass::Boat), ScoreFn::Coverage]
        );
        assert_eq!(p.thres, 0.9);
    }

    #[test]
    fn skyline_has_no_default_on_single_score_datasets() {
        let e = skyline_plan_of("SELECT SKYLINE FROM Vlog").unwrap_err();
        assert!(
            e.message().contains("no default skyline dimensions"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn skyline_rejects_duplicate_and_wrong_arity_dimensions() {
        let e =
            skyline_plan_of("SELECT SKYLINE OF count(car), count(car) FROM Archie").unwrap_err();
        assert!(e.message().contains("duplicate"), "{}", e.message());
        let e = skyline_plan_of("SELECT SKYLINE OF count(car) FROM Archie").unwrap_err();
        assert!(e.message().contains("2 or 3"), "{}", e.message());
    }

    #[test]
    fn skyline_dimensions_must_fit_the_dataset() {
        let e =
            skyline_plan_of("SELECT SKYLINE OF count(car), tailgating() FROM Archie").unwrap_err();
        assert!(e.message().contains("cannot run"), "{}", e.message());
        // coverage on a counting dataset with explicit matching count: ok
        assert!(
            skyline_plan_of("SELECT SKYLINE OF count(boat), coverage() FROM Grand-Canal").is_ok()
        );
    }

    #[test]
    fn skyline_option_validation_and_suggestions() {
        let p = skyline_plan_of("SELECT SKYLINE FROM Archie WITH CONFIDENCE 0.8, SEED 5, BATCH 2")
            .unwrap();
        assert_eq!((p.thres, p.seed, p.batch), (0.8, 5, 2));
        let e = skyline_plan_of("SELECT SKYLINE FROM Archie WITH SAMPLE 0.1").unwrap_err();
        assert!(
            e.message().contains("unknown skyline option"),
            "{}",
            e.message()
        );
        let e = skyline_plan_of("SELECT SKYLINE FROM Archie WITH CONFIDENEC 0.8").unwrap_err();
        assert!(
            e.message().contains("did you mean `confidence`"),
            "{}",
            e.message()
        );
    }
}
