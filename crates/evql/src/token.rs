//! Token stream produced by the [`crate::lexer`].
//!
//! EVQL keywords are *contextual*: the lexer emits every word as
//! [`TokenKind::Ident`] and the parser matches keywords case-insensitively.
//! This keeps the grammar extensible (a dataset may be called `scan`) and
//! lets identifiers contain hyphens, which the paper's dataset names
//! (`Grand-Canal`, `Daxi-old-street`) require. Hyphenated identifiers are
//! unambiguous because EVQL has no arithmetic.

use std::fmt;

/// A half-open byte range into the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span {start}..{end} inverted");
        Span { start, end }
    }

    /// A zero-width span (used for end-of-input errors).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A word: keyword, dataset name, option name, score function…
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A floating-point literal (contains `.` or an exponent).
    Float(f64),
    /// A single- or double-quoted string literal (quotes stripped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Eq,
    Semi,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("number `{v}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Semi => "`;`".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// One lexed token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    /// True when this token is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn keyword_match_is_case_insensitive() {
        let t = Token {
            kind: TokenKind::Ident("Select".into()),
            span: Span::new(0, 6),
        };
        assert!(t.is_kw("SELECT"));
        assert!(t.is_kw("select"));
        assert!(!t.is_kw("from"));
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::Ident("top".into()).describe(), "`top`");
        assert_eq!(TokenKind::Int(50).describe(), "integer `50`");
        assert_eq!(TokenKind::Comma.describe(), "`,`");
    }
}
