//! The `everest-serve` wire protocol: length-prefixed request/response
//! frames plus a canonical (byte-comparable) answer encoding.
//!
//! ## Frame layout
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 BE    | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts payload bytes only, must be ≥ 1 and ≤ the max-frame
//! guard ([`max_frame`], default [`DEFAULT_MAX_FRAME`], overridable via
//! the [`MAX_FRAME_ENV`] environment variable). A violating prefix is
//! rejected *before* any payload is buffered, so an adversarial
//! `0xFFFF_FFFF` length cannot make the daemon allocate 4 GiB.
//!
//! ## Payloads
//!
//! The first payload byte is a tag; all integers are big-endian; strings
//! and byte blobs are `u32` length + bytes. Requests: [`Request::Query`]
//! (EVQL text), [`Request::Admin`] (`SHOW SESSIONS` / `SHOW CACHES` /
//! `SHOW METRICS` / `RELOAD` / `SHUTDOWN`), [`Request::Ping`] (echo).
//! Responses carry the request's `id` back. [`Response::Answer`] holds
//! both a human rendering and the **canonical answer bytes** produced by
//! [`canonical_output`]: a deterministic encoding of the answer rows and
//! result-shaped stats that deliberately excludes wall-clock time and
//! cache provenance, so a daemon answer can be compared byte-for-byte
//! against a single-process [`Session`](crate::exec::Session) run — the
//! serve e2e harness's central property.
//!
//! Decoding never panics on adversarial bytes: every failure mode is a
//! typed [`WireError`].

use crate::exec::{AnswerRow, ExecStats, Output, QueryOutput, SkylineOutput, StreamOutput};
use std::io::{Read, Write};

/// Env var overriding the maximum accepted frame size in bytes
/// (clamped to `[64, 64 MiB]`); registry: `docs/BENCHMARKING.md`.
pub const MAX_FRAME_ENV: &str = "EVEREST_SERVE_MAX_FRAME";

/// Default maximum frame size: 1 MiB.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// The max-frame guard: [`MAX_FRAME_ENV`] when set and parseable,
/// clamped to `[64, 64 MiB]`; otherwise [`DEFAULT_MAX_FRAME`].
pub fn max_frame() -> u32 {
    match std::env::var(MAX_FRAME_ENV) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) => (n.clamp(64, 64 << 20)) as u32,
            Err(_) => DEFAULT_MAX_FRAME,
        },
        Err(_) => DEFAULT_MAX_FRAME,
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Announced length exceeds the max-frame guard.
    FrameTooLarge { len: u32, max: u32 },
    /// Announced length is zero (a frame must at least carry a tag).
    EmptyFrame,
    /// Payload ended before the field named here was complete.
    Truncated(&'static str),
    /// Unknown payload tag byte.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8(&'static str),
    /// Payload decoded cleanly but bytes were left over.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::Truncated(what) => write!(f, "frame truncated while reading {what}"),
            WireError::BadTag(t) => write!(f, "unknown payload tag 0x{t:02x}"),
            WireError::BadUtf8(what) => write!(f, "field {what} is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after payload")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---- request / response ----

/// A client→daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one EVQL statement on this connection's session.
    Query { id: u64, text: String },
    /// A daemon admin command (`SHOW SESSIONS`, `SHOW CACHES`,
    /// `SHOW METRICS`, `RELOAD`, `SHUTDOWN`).
    Admin { id: u64, command: String },
    /// Liveness / echo probe; the daemon answers [`Response::Pong`]
    /// carrying the same nonce.
    Ping { id: u64, nonce: Vec<u8> },
}

/// A daemon→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A successful query answer: canonical bytes + human rendering.
    Answer {
        id: u64,
        canonical: Vec<u8>,
        rendered: String,
    },
    /// A text result (SHOW/SET/EXPLAIN output, admin command output).
    Message { id: u64, text: String },
    /// A failed request. `id` is 0 for protocol-level errors, where no
    /// request id could be decoded.
    Error { id: u64, text: String },
    /// Echo of a [`Request::Ping`].
    Pong { id: u64, nonce: Vec<u8> },
    /// The daemon shed this query at admission (too many queries already
    /// in flight). Distinct from [`Response::Error`] so load generators
    /// and clients can retry/back off without parsing message text.
    Overloaded {
        id: u64,
        /// Queries in flight when the request was shed (the admission
        /// limit it collided with).
        inflight: u64,
        text: String,
    },
}

const TAG_QUERY: u8 = 0x01;
const TAG_ADMIN: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_ANSWER: u8 = 0x81;
const TAG_MESSAGE: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_OVERLOADED: u8 = 0x85;

impl Request {
    /// Encodes the payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query { id, text } => {
                out.push(TAG_QUERY);
                put_u64(&mut out, *id);
                put_bytes(&mut out, text.as_bytes());
            }
            Request::Admin { id, command } => {
                out.push(TAG_ADMIN);
                put_u64(&mut out, *id);
                put_bytes(&mut out, command.as_bytes());
            }
            Request::Ping { id, nonce } => {
                out.push(TAG_PING);
                put_u64(&mut out, *id);
                put_bytes(&mut out, nonce);
            }
        }
        out
    }

    /// Decodes a payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let tag = r.u8("tag")?;
        let req = match tag {
            TAG_QUERY => Request::Query {
                id: r.u64("query id")?,
                text: r.string("query text")?,
            },
            TAG_ADMIN => Request::Admin {
                id: r.u64("admin id")?,
                command: r.string("admin command")?,
            },
            TAG_PING => Request::Ping {
                id: r.u64("ping id")?,
                nonce: r.bytes("ping nonce")?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(req)
    }

    /// The request id (0 only if the caller chose 0).
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. } | Request::Admin { id, .. } | Request::Ping { id, .. } => *id,
        }
    }
}

impl Response {
    /// Encodes the payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Answer {
                id,
                canonical,
                rendered,
            } => {
                out.push(TAG_ANSWER);
                put_u64(&mut out, *id);
                put_bytes(&mut out, canonical);
                put_bytes(&mut out, rendered.as_bytes());
            }
            Response::Message { id, text } => {
                out.push(TAG_MESSAGE);
                put_u64(&mut out, *id);
                put_bytes(&mut out, text.as_bytes());
            }
            Response::Error { id, text } => {
                out.push(TAG_ERROR);
                put_u64(&mut out, *id);
                put_bytes(&mut out, text.as_bytes());
            }
            Response::Pong { id, nonce } => {
                out.push(TAG_PONG);
                put_u64(&mut out, *id);
                put_bytes(&mut out, nonce);
            }
            Response::Overloaded { id, inflight, text } => {
                out.push(TAG_OVERLOADED);
                put_u64(&mut out, *id);
                put_u64(&mut out, *inflight);
                put_bytes(&mut out, text.as_bytes());
            }
        }
        out
    }

    /// Decodes a payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let tag = r.u8("tag")?;
        let resp = match tag {
            TAG_ANSWER => Response::Answer {
                id: r.u64("answer id")?,
                canonical: r.bytes("canonical answer")?,
                rendered: r.string("rendered answer")?,
            },
            TAG_MESSAGE => Response::Message {
                id: r.u64("message id")?,
                text: r.string("message text")?,
            },
            TAG_ERROR => Response::Error {
                id: r.u64("error id")?,
                text: r.string("error text")?,
            },
            TAG_PONG => Response::Pong {
                id: r.u64("pong id")?,
                nonce: r.bytes("pong nonce")?,
            },
            TAG_OVERLOADED => Response::Overloaded {
                id: r.u64("overloaded id")?,
                inflight: r.u64("overloaded inflight")?,
                text: r.string("overloaded text")?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// The id of the request this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answer { id, .. }
            | Response::Message { id, .. }
            | Response::Error { id, .. }
            | Response::Pong { id, .. }
            | Response::Overloaded { id, .. } => *id,
        }
    }
}

// ---- framing ----

/// Wraps a payload in a length-prefixed frame.
///
/// Panics if the payload exceeds `u32::MAX` (the writer-side guard is
/// [`write_frame`], which returns an error instead).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    // lint:allow(panic-unwrap): documented panic contract — callers needing an error path use write_frame
    out.extend_from_slice(&(u32::try_from(payload.len()).expect("frame fits u32")).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame, refusing payloads beyond `max` bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u32) -> std::io::Result<()> {
    let len = payload.len();
    if len == 0 || len > max as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            WireError::FrameTooLarge {
                len: len.min(u32::MAX as usize) as u32,
                max,
            },
        ));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads exactly one frame from a blocking reader, enforcing the
/// max-frame guard before the payload is buffered.
pub fn read_frame(r: &mut impl Read, max: u32) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::EmptyFrame,
        ));
    }
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::FrameTooLarge { len, max },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// An incremental frame decoder for non-blocking/poll-style reads: feed
/// byte chunks with [`push`](FrameDecoder::push), drain complete frames
/// with [`next_frame`](FrameDecoder::next_frame). The daemon uses this
/// so a read timeout mid-frame (its shutdown poll) never loses bytes.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_frame: u32,
    /// Set once a guard violation is seen; the stream cannot be resynced.
    dead: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder enforcing the given max-frame guard.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            max_frame,
            dead: None,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when a partial frame (or undecoded bytes) are buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Returns the next complete frame's payload, `Ok(None)` when more
    /// bytes are needed, or the guard violation that killed the stream.
    /// After an error every further call returns the same error: a
    /// length-prefixed stream cannot be resynchronized past a bad prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 {
            self.dead = Some(WireError::EmptyFrame);
            return Err(WireError::EmptyFrame);
        }
        if len > self.max_frame {
            let e = WireError::FrameTooLarge {
                len,
                max: self.max_frame,
            };
            self.dead = Some(e.clone());
            return Err(e);
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

// ---- canonical answer encoding ----

/// Canonical answer bytes for an [`Output`]: a deterministic encoding of
/// everything result-shaped (rows, confidence, iterations, cleaned,
/// quality) that **excludes** the performance-shaped stats — wall-clock
/// time, `phase1_cached`, and the simulated-latency trio (`sim_seconds`
/// carries a measured Phase-2 select component, so it and `speedup` jitter
/// in their low bits run to run) — so the same query answered by the
/// daemon and by a private single-process session encodes to identical
/// bytes.
pub fn canonical_output(output: &Output) -> Vec<u8> {
    let mut out = Vec::new();
    match output {
        Output::Rows(q) => {
            out.push(b'R');
            put_rows(&mut out, q);
        }
        Output::Skyline(s) => {
            out.push(b'K');
            put_skyline(&mut out, s);
        }
        Output::Stream(s) => {
            out.push(b'S');
            put_stream(&mut out, s);
        }
        Output::Message(m) => {
            out.push(b'M');
            put_bytes(&mut out, m.as_bytes());
        }
    }
    out
}

fn put_rows(out: &mut Vec<u8>, q: &QueryOutput) {
    put_u32(out, q.rows.len() as u32);
    for row in &q.rows {
        put_answer_row(out, row);
    }
    put_stats(out, &q.stats);
}

fn put_answer_row(out: &mut Vec<u8>, row: &AnswerRow) {
    put_u64(out, row.rank as u64);
    put_u64(out, row.start_frame as u64);
    put_u64(out, row.end_frame as u64);
    put_f64(out, row.time_sec);
    put_f64(out, row.score);
}

fn put_skyline(out: &mut Vec<u8>, s: &SkylineOutput) {
    put_u32(out, s.score_names.len() as u32);
    for name in &s.score_names {
        put_bytes(out, name.as_bytes());
    }
    put_u32(out, s.rows.len() as u32);
    for row in &s.rows {
        put_u64(out, row.frame as u64);
        put_f64(out, row.time_sec);
        put_u32(out, row.scores.len() as u32);
        for &v in &row.scores {
            put_f64(out, v);
        }
    }
    put_stats(out, &s.stats);
}

fn put_stream(out: &mut Vec<u8>, s: &StreamOutput) {
    put_u32(out, s.answers.len() as u32);
    for a in &s.answers {
        put_u64(out, a.at_frame as u64);
        put_u64(out, a.window_start as u64);
        put_f64(out, a.confidence);
        out.push(a.converged as u8);
        out.push(a.termination.code());
        put_u64(out, a.cleaned as u64);
        put_u32(out, a.topk.len() as u32);
        for &(id, bucket) in &a.topk {
            put_u64(out, id as u64);
            put_u32(out, bucket);
        }
        put_u32(out, a.stability.len() as u32);
        for &p in &a.stability {
            put_f64(out, p);
        }
    }
    put_u32(out, s.retained.len() as u32);
    for &f in &s.retained {
        put_u64(out, f as u64);
    }
    put_stats(out, &s.stats);
}

/// Result-shaped stats subset. The fields that legitimately differ
/// between a daemon (shared cache, real sockets) and a private session
/// are deliberately absent: `wall`, `phase1_cached`, the latency trio
/// `sim_seconds`/`scan_seconds`/`speedup` (`sim_seconds` includes the
/// *measured* Phase-2 select time, so its low bits are wall-derived), and
/// the retry/breaker counters (operational telemetry, not an answer).
/// `termination` *is* canonical: given the same budget and fault seed the
/// stop cause is deterministic, and it qualifies the degraded answer.
fn put_stats(out: &mut Vec<u8>, stats: &ExecStats) {
    put_bytes(out, stats.engine.display().as_bytes());
    put_u64(out, stats.n_frames as u64);
    put_u64(out, stats.n_items as u64);
    put_opt_f64(out, stats.confidence);
    match stats.converged {
        None => out.push(0),
        Some(false) => out.push(1),
        Some(true) => out.push(2),
    }
    put_opt_u64(out, stats.iterations.map(|v| v as u64));
    put_opt_u64(out, stats.cleaned.map(|v| v as u64));
    match stats.quality {
        None => out.push(0),
        Some(q) => {
            out.push(1);
            put_f64(out, q.precision);
            put_f64(out, q.rank_distance);
            put_f64(out, q.score_error);
        }
    }
    // 0 = no Phase 2 ran; otherwise the Termination wire code (1–5).
    out.push(stats.termination.map_or(0, |t| t.code()));
}

// ---- primitive encoders ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let s = self.take(4, what)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let s = self.take(8, what)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(what)?).map_err(|_| WireError::BadUtf8(what))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Query {
                id: 7,
                text: "SELECT TOP 5 FRAMES FROM Archie".into(),
            },
            Request::Admin {
                id: u64::MAX,
                command: "SHOW SESSIONS".into(),
            },
            Request::Ping {
                id: 0,
                nonce: vec![0, 1, 2, 255],
            },
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Answer {
                id: 3,
                canonical: vec![b'R', 0, 1],
                rendered: "rank table".into(),
            },
            Response::Message {
                id: 4,
                text: "ok".into(),
            },
            Response::Error {
                id: 0,
                text: "unknown payload tag 0x7f".into(),
            },
            Response::Pong {
                id: 9,
                nonce: vec![],
            },
            Response::Overloaded {
                id: 11,
                inflight: 32,
                text: "too many queries in flight".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn decoder_assembles_frames_across_chunk_boundaries() {
        let payload = Request::Query {
            id: 1,
            text: "SHOW DATASETS".into(),
        }
        .encode();
        let framed = frame(&payload);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for chunk in framed.chunks(3) {
            dec.push(chunk);
        }
        assert_eq!(dec.next_frame().unwrap().unwrap(), payload);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_buffering() {
        let mut dec = FrameDecoder::new(1024);
        dec.push(&u32::MAX.to_be_bytes());
        match dec.next_frame() {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("{other:?}"),
        }
        // the stream stays dead
        dec.push(&frame(&[1]));
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_rejects_zero_length_frames() {
        let mut dec = FrameDecoder::new(1024);
        dec.push(&0u32.to_be_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::EmptyFrame));
    }

    #[test]
    fn truncated_payloads_decode_to_typed_errors() {
        let full = Request::Query {
            id: 2,
            text: "SELECT TOP 1 FRAMES FROM Archie".into(),
        }
        .encode();
        for cut in 0..full.len() {
            match Request::decode(&full[..cut]) {
                Err(WireError::Truncated(_)) => {}
                Err(WireError::BadTag(_)) if cut == 0 => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping {
            id: 1,
            nonce: vec![7],
        }
        .encode();
        bytes.push(0xAA);
        assert_eq!(
            Request::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn env_guard_parses_and_clamps() {
        // not set in the test environment → default
        assert_eq!(max_frame(), DEFAULT_MAX_FRAME);
    }

    #[test]
    fn write_frame_refuses_oversized_and_empty_payloads() {
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 10], 8).is_err());
        assert!(write_frame(&mut sink, &[], 8).is_err());
        assert!(write_frame(&mut sink, &[1, 2], 8).is_ok());
        assert_eq!(sink, vec![0, 0, 0, 2, 1, 2]);
    }
}
