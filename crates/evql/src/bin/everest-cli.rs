//! `everest-cli` — an interactive EVQL shell over the synthetic catalog.
//!
//! Usage:
//!
//! ```text
//! everest-cli                         # REPL (reads statements from stdin)
//! everest-cli -e "SELECT TOP 5 FRAMES FROM Archie"   # one-shot
//! everest-cli -e "stmt1" -e "stmt2"                  # several one-shots
//! everest-cli --scale 4 -e "..."                     # override SET scale
//! ```
//!
//! The shell keeps one [`Session`], so Phase-1 work is cached across
//! statements exactly as in a notebook workflow: the first query on a
//! dataset pays for CMDN training + populating `D0`; later queries with
//! different K / thres reuse it and only re-run Phase 2.

use everest_evql::{Output, Session};
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut one_shots: Vec<String> = Vec::new();
    let mut scale: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--execute" => match args.next() {
                Some(stmt) => one_shots.push(stmt),
                None => {
                    eprintln!("error: {arg} needs a statement argument");
                    std::process::exit(2);
                }
            },
            "--scale" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => scale = Some(v),
                _ => {
                    eprintln!("error: --scale needs an integer ≥ 1");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                print_help();
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }

    let mut session = Session::new();
    if let Some(s) = scale {
        session.settings.scale = s;
    }

    if !one_shots.is_empty() {
        let mut failed = false;
        for stmt in &one_shots {
            failed |= !run_statement(&mut session, stmt);
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    // REPL mode.
    println!(
        "everest-cli — Top-K video analytics with probabilistic guarantees\n\
         type `SHOW DATASETS`, `HELP` or a SELECT statement; `QUIT` exits.\n\
         (current scale = 1/{}: first query per dataset trains the CMDN)\n",
        session.settings.scale
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("evql> ");
        } else {
            print!("   -> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed.to_ascii_lowercase().as_str() {
                "" => continue,
                "quit" | "exit" | "q" => break,
                "help" | "\\h" | "?" => {
                    print_help();
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        // Execute on `;` or on a line that looks complete (single-line
        // statements dominate interactive use).
        if trimmed.ends_with(';') || !trimmed.is_empty() {
            let stmt = std::mem::take(&mut buffer);
            run_statement(&mut session, stmt.trim());
        }
    }
}

/// Executes one statement; returns `false` on error.
fn run_statement(session: &mut Session, stmt: &str) -> bool {
    if stmt.is_empty() {
        return true;
    }
    match session.execute(stmt) {
        Ok(Output::Rows(answer)) => {
            println!("{}", answer.render());
            true
        }
        Ok(Output::Skyline(answer)) => {
            println!("{}", answer.render());
            true
        }
        Ok(Output::Stream(answer)) => {
            println!("{}", answer.render());
            true
        }
        Ok(Output::Message(m)) => {
            println!("{m}");
            true
        }
        Err(err) => {
            eprintln!("{}", err.render(stmt));
            false
        }
    }
}

fn print_help() {
    println!(
        "EVQL statements:\n\
         \n\
         SELECT TOP <k> FRAMES FROM <dataset>\n\
             [SCORE count(<class>) | tailgating() | sentiment()]\n\
             [USING everest | scan | cmdn | hog | tinyyolo | noscope]\n\
             [WITH CONFIDENCE <p>, SEED <n>, STEP <s>, BATCH <b>, RESORT <r>]\n\
         \n\
         SELECT TOP <k> WINDOWS OF <len> FRAMES [SLIDE <step>] FROM <dataset>\n\
             [WITH SAMPLE <frac>, ...]            -- §3.4 window queries\n\
         \n\
         SELECT TOP <k> FRAMES FROM <dataset> EVERY <n> FRAMES EMIT\n\
             [WITH WINDOW <w>, BUDGET <b>, ...]   -- continuous Top-K\n\
         \n\
         SELECT SKYLINE [OF <f1()>, <f2()>] FROM <dataset>\n\
             [WITH CONFIDENCE <p>, SEED <n>]      -- §5 probabilistic skyline\n\
         \n\
         EXPLAIN SELECT ...                        -- show the plan, don't run\n\
         SHOW DATASETS | SCORES | ENGINES | SETTINGS\n\
         SET scale|confidence|seed|sample|batch|resort = <value>\n\
         QUIT\n\
         \n\
         Examples:\n\
           SELECT TOP 50 FRAMES FROM Taipei-bus WITH CONFIDENCE 0.9\n\
           SELECT TOP 10 WINDOWS OF 150 FRAMES FROM Grand-Canal\n\
           SELECT TOP 5 FRAMES FROM Dashcam-California SCORE tailgating()\n\
           SELECT TOP 20 FRAMES FROM Archie USING noscope\n"
    );
}
