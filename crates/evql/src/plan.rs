//! Validated logical plans and `EXPLAIN` rendering.
//!
//! A [`QueryPlan`] is the output of [`crate::analyze`]: every name is
//! resolved against the catalog, every parameter validated and defaulted.
//! Executing a plan (see [`crate::exec`]) cannot fail on user input — only
//! on environmental problems.

use crate::catalog::{ScoreFn, SourceEntry};

/// Which processing engine answers the query (§4's method lineup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's system: CMDN Phase 1 + oracle-in-the-loop Phase 2.
    Everest,
    /// Scan-and-test: oracle on every frame (the exact baseline).
    Scan,
    /// CMDN-only: rank by the proxy's mean score, no cleaning.
    CmdnOnly,
    /// HOG + SVM classic scorer.
    Hog,
    /// TinyYOLOv3-style cheap detector.
    TinyYolo,
    /// NoScope-style range selection, then Top-K over candidates.
    SelectTopk,
}

impl Engine {
    pub fn display(&self) -> &'static str {
        match self {
            Engine::Everest => "everest",
            Engine::Scan => "scan",
            Engine::CmdnOnly => "cmdn",
            Engine::Hog => "hog",
            Engine::TinyYolo => "tinyyolo",
            Engine::SelectTopk => "select_topk",
        }
    }

    /// All engine spellings EVQL accepts (first spelling is canonical).
    pub fn aliases(&self) -> &'static [&'static str] {
        match self {
            Engine::Everest => &["everest"],
            Engine::Scan => &["scan", "scan_and_test", "oracle"],
            Engine::CmdnOnly => &["cmdn", "cmdn_only", "proxy"],
            Engine::Hog => &["hog"],
            Engine::TinyYolo => &["tinyyolo", "tiny_yolo", "tinyyolov3"],
            Engine::SelectTopk => &["select_topk", "select-topk", "noscope"],
        }
    }

    pub fn all() -> [Engine; 6] {
        [
            Engine::Everest,
            Engine::Scan,
            Engine::CmdnOnly,
            Engine::Hog,
            Engine::TinyYolo,
            Engine::SelectTopk,
        ]
    }

    /// Resolves an engine name (any alias, case-insensitive).
    pub fn by_name(name: &str) -> Option<Engine> {
        Engine::all()
            .into_iter()
            .find(|e| e.aliases().iter().any(|a| a.eq_ignore_ascii_case(name)))
    }
}

/// What the validated query ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanTarget {
    Frames,
    /// `slide == len` is a tumbling window (§3.4); `slide < len` slides.
    Windows {
        len: usize,
        slide: usize,
        sample_frac: f64,
    },
}

/// A fully-resolved, validated Top-K query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub source: SourceEntry,
    pub score: ScoreFn,
    pub k: usize,
    pub target: PlanTarget,
    pub engine: Engine,
    /// Probability threshold `thres` (Everest engine only).
    pub thres: f64,
    /// Dataset build seed (0 = the source's default seed).
    pub seed: u64,
    /// Score quantization step (§3.2).
    pub quant_step: f64,
    /// Phase-2 batch-inference size `b` (§3.5).
    pub batch: usize,
    /// ψ re-sort period (§3.3.2).
    pub resort_period: usize,
    /// Catalog scale divisor in force when the plan was made.
    pub scale_divisor: usize,
    /// Scaled frame count the plan will run over.
    pub n_frames: usize,
    /// `EVERY <n> FRAMES EMIT`: continuous emission stride in arriving
    /// frames; `None` runs the query once over the whole video.
    pub emit_every: Option<usize>,
    /// Streaming sliding-window length (`WITH WINDOW w`); `None` keeps the
    /// whole prefix (a landmark query).
    pub stream_window: Option<usize>,
    /// Per-emit oracle-cleaning budget (`WITH BUDGET b`); `None` cleans
    /// until the confidence threshold is met.
    pub stream_budget: Option<usize>,
    /// `WITHIN <n> ORACLE CALLS`: hard cap on Phase-2 oracle calls for
    /// the whole query; exceeding it yields a degraded (anytime) answer.
    pub max_oracle_calls: Option<usize>,
    /// `WITH DEADLINE <s>`: simulated-seconds deadline on Phase-2
    /// cleaning; exceeding it yields a degraded answer.
    pub deadline: Option<f64>,
    /// `WITH FLAKY <seed>`: wrap the oracle in seeded fault injection
    /// (timeouts, transient errors, latency spikes) with deterministic
    /// retry/backoff. `None` runs the pristine oracle.
    pub flaky_seed: Option<u64>,
}

impl QueryPlan {
    /// Number of rankable items (frames, or windows of the given spec).
    pub fn n_items(&self) -> usize {
        match self.target {
            PlanTarget::Frames => self.n_frames,
            PlanTarget::Windows { len, slide, .. } => {
                if self.n_frames == 0 {
                    0
                } else {
                    // ceil((n - len) / slide) + 1, clamped for short videos
                    let n = self.n_frames;
                    if n <= len {
                        1
                    } else {
                        (n - len).div_ceil(slide) + 1
                    }
                }
            }
        }
    }

    /// Multi-line `EXPLAIN` rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "TopK(k={}, engine={}{})\n",
            self.k,
            self.engine.display(),
            if self.engine == Engine::Everest {
                format!(", thres={}", self.thres)
            } else {
                String::new()
            }
        ));
        let mut indent = " └─ ";
        if self.max_oracle_calls.is_some() || self.deadline.is_some() || self.flaky_seed.is_some() {
            let mut parts = Vec::new();
            if let Some(c) = self.max_oracle_calls {
                parts.push(format!("calls≤{c}"));
            }
            if let Some(d) = self.deadline {
                parts.push(format!("deadline={d}s"));
            }
            if let Some(s) = self.flaky_seed {
                parts.push(format!("flaky(seed={s})"));
            }
            out.push_str(&format!("{indent}Budget({})\n", parts.join(", ")));
            indent = "     └─ ";
        }
        if let Some(stride) = self.emit_every {
            out.push_str(&format!(
                "{indent}StreamEmit(every={stride} frames, window={}, budget={})\n",
                self.stream_window
                    .map_or("prefix".into(), |w| w.to_string()),
                self.stream_budget
                    .map_or("unbounded".into(), |b| b.to_string()),
            ));
            indent = "     └─ ";
        }
        if let PlanTarget::Windows {
            len,
            slide,
            sample_frac,
        } = self.target
        {
            out.push_str(&format!(
                "{indent}WindowAgg(len={len}, slide={slide}{}, sample={sample_frac})\n",
                if slide == len {
                    " [tumbling]"
                } else {
                    " [sliding]"
                },
            ));
            indent = "     └─ ";
        }
        out.push_str(&format!(
            "{indent}UncertainScan(dataset={}, frames={}, score={}, step={})\n",
            self.source.name,
            self.n_frames,
            self.score.display(),
            self.quant_step,
        ));
        let deeper = format!("    {indent}");
        match self.engine {
            Engine::Everest | Engine::CmdnOnly => {
                out.push_str(&format!(
                    "{deeper}Phase1(CMDN proxy, quantized mixture → D0, seed={})\n",
                    self.seed
                ));
                if self.engine == Engine::Everest {
                    out.push_str(&format!(
                        "{deeper}Phase2(oracle-in-the-loop cleaning, batch={}, resort={})\n",
                        self.batch, self.resort_period
                    ));
                }
            }
            Engine::Scan => {
                out.push_str(&format!(
                    "{deeper}OracleScan(cost≈{:.0} ms/frame)\n",
                    1000.0 * oracle_cost_hint(self.score)
                ));
            }
            Engine::Hog | Engine::TinyYolo => {
                out.push_str(&format!("{deeper}CheapScan({})\n", self.engine.display()));
            }
            Engine::SelectTopk => {
                out.push_str(&format!(
                    "{deeper}RangeSelect(λ sweep, fn≤0.1) → OracleConfirm → TopK\n"
                ));
            }
        }
        out
    }
}

fn oracle_cost_hint(score: ScoreFn) -> f64 {
    match score {
        ScoreFn::Count(_) | ScoreFn::Coverage => everest_models::oracle::YOLO_COST_PER_FRAME,
        ScoreFn::Tailgating => everest_models::oracle::DEPTH_COST_PER_FRAME,
        ScoreFn::Sentiment => everest_models::sentiment::SENTIMENT_COST_PER_FRAME,
    }
}

/// A validated `SELECT SKYLINE` query: 2–3 scoring dimensions over one
/// dataset, answered with the oracle-in-the-loop skyline cleaner
/// (`everest-core::skyline`).
#[derive(Debug, Clone)]
pub struct SkylinePlan {
    pub source: SourceEntry,
    /// The scoring dimensions (2 or 3, distinct, all served by `source`).
    pub scores: Vec<ScoreFn>,
    /// Confidence threshold for `Pr(R̂ = Sky)`.
    pub thres: f64,
    pub seed: u64,
    pub batch: usize,
    pub scale_divisor: usize,
    pub n_frames: usize,
}

impl SkylinePlan {
    /// Multi-line `EXPLAIN` rendering.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "Skyline(dims={}, thres={})\n",
            self.scores.len(),
            self.thres
        );
        out.push_str(&format!(
            " └─ UncertainScan(dataset={}, frames={}, scores=[{}])\n",
            self.source.name,
            self.n_frames,
            self.scores
                .iter()
                .map(|s| s.display())
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out.push_str(&format!(
            "     └─ Phase1(one CMDN per dimension, seed={})\n",
            self.seed
        ));
        out.push_str(&format!(
            "     └─ SkylineClean(smallest-factor batches of {}, shared detector pass)\n",
            self.batch
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::source_by_name;
    use everest_video::scene::ObjectClass;

    fn plan(target: PlanTarget, n_frames: usize) -> QueryPlan {
        QueryPlan {
            source: source_by_name("Archie").unwrap(),
            score: ScoreFn::Count(ObjectClass::Car),
            k: 10,
            target,
            engine: Engine::Everest,
            thres: 0.9,
            seed: 0,
            quant_step: 1.0,
            batch: 8,
            resort_period: 10,
            scale_divisor: 8,
            n_frames,
            emit_every: None,
            stream_window: None,
            stream_budget: None,
            max_oracle_calls: None,
            deadline: None,
            flaky_seed: None,
        }
    }

    #[test]
    fn engine_alias_resolution() {
        assert_eq!(Engine::by_name("EVEREST"), Some(Engine::Everest));
        assert_eq!(Engine::by_name("noscope"), Some(Engine::SelectTopk));
        assert_eq!(Engine::by_name("select-topk"), Some(Engine::SelectTopk));
        assert_eq!(Engine::by_name("oracle"), Some(Engine::Scan));
        assert_eq!(Engine::by_name("warp"), None);
    }

    #[test]
    fn n_items_frames_and_windows() {
        assert_eq!(plan(PlanTarget::Frames, 1000).n_items(), 1000);
        // tumbling 100-frame windows over 1000 frames = 10
        let t = PlanTarget::Windows {
            len: 100,
            slide: 100,
            sample_frac: 0.1,
        };
        assert_eq!(plan(t, 1000).n_items(), 10);
        // sliding by 50: (1000-100)/50 + 1 = 19
        let s = PlanTarget::Windows {
            len: 100,
            slide: 50,
            sample_frac: 0.1,
        };
        assert_eq!(plan(s, 1000).n_items(), 19);
        // degenerate: video shorter than the window
        let d = PlanTarget::Windows {
            len: 100,
            slide: 100,
            sample_frac: 0.1,
        };
        assert_eq!(plan(d, 60).n_items(), 1);
    }

    #[test]
    fn explain_mentions_the_pieces() {
        let p = plan(
            PlanTarget::Windows {
                len: 30,
                slide: 15,
                sample_frac: 0.1,
            },
            5000,
        );
        let text = p.explain();
        assert!(text.contains("TopK(k=10"), "{text}");
        assert!(text.contains("[sliding]"), "{text}");
        assert!(text.contains("UncertainScan(dataset=Archie"), "{text}");
        assert!(text.contains("Phase2"), "{text}");
    }

    #[test]
    fn explain_streaming_plan_shows_emit_node() {
        let mut p = plan(PlanTarget::Frames, 5000);
        p.emit_every = Some(100);
        p.stream_window = Some(500);
        p.stream_budget = Some(16);
        let text = p.explain();
        assert!(
            text.contains("StreamEmit(every=100 frames, window=500, budget=16)"),
            "{text}"
        );
        // the stream node sits between TopK and the scan
        let emit_at = text.find("StreamEmit").unwrap();
        assert!(text.find("TopK").unwrap() < emit_at, "{text}");
        assert!(emit_at < text.find("UncertainScan").unwrap(), "{text}");
        p.stream_window = None;
        p.stream_budget = None;
        let text = p.explain();
        assert!(text.contains("window=prefix, budget=unbounded"), "{text}");
    }

    #[test]
    fn explain_budget_node_renders_only_when_set() {
        let mut p = plan(PlanTarget::Frames, 5000);
        assert!(!p.explain().contains("Budget("), "{}", p.explain());
        p.max_oracle_calls = Some(200);
        p.deadline = Some(2.5);
        p.flaky_seed = Some(7);
        let text = p.explain();
        assert!(
            text.contains("Budget(calls≤200, deadline=2.5s, flaky(seed=7))"),
            "{text}"
        );
        let budget_at = text.find("Budget").unwrap();
        assert!(text.find("TopK").unwrap() < budget_at, "{text}");
        assert!(budget_at < text.find("UncertainScan").unwrap(), "{text}");
    }

    #[test]
    fn explain_scan_engine_has_no_phase2() {
        let mut p = plan(PlanTarget::Frames, 5000);
        p.engine = Engine::Scan;
        let text = p.explain();
        assert!(text.contains("OracleScan"), "{text}");
        assert!(!text.contains("Phase2"), "{text}");
    }
}
