//! EVQL error type with source-anchored rendering.
//!
//! Every error carries the [`Span`] it refers to; [`EvqlError::render`]
//! produces a compiler-style message with the offending line and a caret
//! underline, so that CLI users see *where* a query went wrong:
//!
//! ```text
//! error: unknown dataset `Grand-Chanel` (did you mean `Grand-Canal`?)
//!   | SELECT TOP 50 FRAMES FROM Grand-Chanel
//!   |                            ^^^^^^^^^^^^
//! ```

use crate::token::Span;
use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexer: a character that cannot start any token.
    UnexpectedChar(char),
    /// Lexer: a string literal missing its closing quote.
    UnterminatedString,
    /// Lexer: a numeric literal that does not parse.
    BadNumber(String),
    /// Parser: got one thing, wanted another.
    Expected { wanted: String, got: String },
    /// Parser: query ended too early.
    UnexpectedEnd { wanted: String },
    /// Parser: trailing tokens after a complete statement.
    TrailingInput,
    /// Analysis: a name (dataset, score fn, engine, option) did not resolve.
    Unknown {
        what: &'static str,
        name: String,
        suggestion: Option<String>,
    },
    /// Analysis: a value is outside its legal range.
    OutOfRange { what: String, detail: String },
    /// Analysis: query parts that do not fit together
    /// (e.g. `SCORE tailgating()` on a traffic dataset).
    Incompatible(String),
    /// Execution-time failure (dataset build, oracle, …).
    Exec(String),
}

/// An EVQL front-end error: kind + location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvqlError {
    pub kind: ErrorKind,
    pub span: Span,
}

impl EvqlError {
    pub fn new(kind: ErrorKind, span: Span) -> Self {
        EvqlError { kind, span }
    }

    /// Short one-line message (no source excerpt).
    pub fn message(&self) -> String {
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => format!("unexpected character `{c}`"),
            ErrorKind::UnterminatedString => "unterminated string literal".into(),
            ErrorKind::BadNumber(s) => format!("malformed number `{s}`"),
            ErrorKind::Expected { wanted, got } => format!("expected {wanted}, found {got}"),
            ErrorKind::UnexpectedEnd { wanted } => {
                format!("expected {wanted}, but the query ended")
            }
            ErrorKind::TrailingInput => "unexpected input after the end of the statement".into(),
            ErrorKind::Unknown {
                what,
                name,
                suggestion,
            } => match suggestion {
                Some(s) => format!("unknown {what} `{name}` (did you mean `{s}`?)"),
                None => format!("unknown {what} `{name}`"),
            },
            ErrorKind::OutOfRange { what, detail } => format!("{what}: {detail}"),
            ErrorKind::Incompatible(msg) => msg.clone(),
            ErrorKind::Exec(msg) => msg.clone(),
        }
    }

    /// Full compiler-style rendering against the original query text.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error: {}\n", self.message());
        // Find the line containing span.start.
        let start = self.span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |p| start + p);
        let line = &src[line_start..line_end];
        if !line.is_empty() || start < src.len() {
            out.push_str(&format!("  | {line}\n"));
            let col = start - line_start;
            let width = (self.span.end.min(line_end).saturating_sub(start)).max(1);
            out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(width)));
        }
        out
    }
}

impl fmt::Display for EvqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for EvqlError {}

/// Case-insensitive Levenshtein distance, used for "did you mean" hints.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance budget, for hints.
pub(crate) fn suggest<'a, I>(name: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = &'a str>,
{
    candidates
        .into_iter()
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, c)| d <= (c.len() / 2).max(2))
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("top", "top"), 0);
        assert_eq!(edit_distance("Top", "top"), 0, "case-insensitive");
        assert_eq!(edit_distance("tpo", "top"), 2); // transposition = 2 plain edits
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn suggest_picks_nearest_within_budget() {
        let cands = ["archie", "grand-canal", "taipei-bus"];
        assert_eq!(suggest("archi", cands).as_deref(), Some("archie"));
        assert_eq!(
            suggest("grand-chanel", cands).as_deref(),
            Some("grand-canal")
        );
        assert_eq!(suggest("zzzzzz", cands), None, "too far from everything");
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "SELECT TOP 50 FRAMES FROM nowhere";
        let err = EvqlError::new(
            ErrorKind::Unknown {
                what: "dataset",
                name: "nowhere".into(),
                suggestion: None,
            },
            Span::new(26, 33),
        );
        let rendered = err.render(src);
        assert!(rendered.contains("unknown dataset `nowhere`"), "{rendered}");
        assert!(rendered.contains("^^^^^^^"), "{rendered}");
        // caret under the right column
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap() - "  | ".len(), 26);
    }

    #[test]
    fn render_handles_end_of_input() {
        let src = "SELECT TOP 5";
        let err = EvqlError::new(
            ErrorKind::UnexpectedEnd {
                wanted: "`FRAMES` or `WINDOWS`".into(),
            },
            Span::point(src.len()),
        );
        let rendered = err.render(src);
        assert!(rendered.contains("the query ended"), "{rendered}");
    }

    #[test]
    fn render_multiline_source_excerpts_right_line() {
        let src = "SELECT TOP 5 FRAMES\nFROM mars\nWITH CONFIDENCE 0.9";
        let from = src.find("mars").unwrap();
        let err = EvqlError::new(
            ErrorKind::Unknown {
                what: "dataset",
                name: "mars".into(),
                suggestion: None,
            },
            Span::new(from, from + 4),
        );
        let rendered = err.render(src);
        assert!(rendered.contains("| FROM mars"), "{rendered}");
        assert!(
            !rendered.contains("SELECT"),
            "only the offending line: {rendered}"
        );
    }
}
