//! Abstract syntax of EVQL statements.
//!
//! The grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := select | skyline | EXPLAIN (select | skyline)
//!             | SHOW word | SET ident = literal
//! select     := SELECT TOP int target FROM source
//!               [SCORE ident '(' args ')']
//!               [USING ident]
//!               [EVERY int FRAMES EMIT]
//!               [WITHIN int ORACLE CALLS]
//!               [WITH option (',' option)*] [';']
//! skyline    := SELECT SKYLINE [OF call (',' call)*] FROM source
//!               [WITH option (',' option)*] [';']
//! target     := FRAMES | WINDOWS OF int FRAMES [SLIDE int]
//! source     := ident | string
//! args       := (ident | string | number) (',' …)*
//! option     := ident (number | int | ident | string)
//! ```
//!
//! The AST is purely syntactic: names are unresolved strings with spans.
//! Resolution and validation happen in [`crate::analyze`].

use crate::token::Span;

/// Any parsed EVQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `SELECT SKYLINE [OF f1(), f2()] FROM …` — probabilistic skyline
    /// (the §5 future-work operator).
    Skyline(SkylineStmt),
    /// `EXPLAIN SELECT …` — plan only, no execution.
    Explain(SelectStmt),
    /// `EXPLAIN SELECT SKYLINE …`.
    ExplainSkyline(SkylineStmt),
    /// `SHOW DATASETS | SCORES | ENGINES | SETTINGS`.
    Show {
        what: String,
        span: Span,
    },
    /// `SET name = value` — session option.
    Set {
        name: String,
        value: Literal,
        span: Span,
    },
}

/// A `SELECT SKYLINE …` query: Pareto-optimal frames across 2–3 scores.
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineStmt {
    /// The scoring dimensions; empty = the dataset's default pair.
    pub scores: Vec<ScoreCall>,
    /// Span of the `SKYLINE` keyword (for diagnostics).
    pub skyline_span: Span,
    pub source: String,
    pub source_span: Span,
    pub options: Vec<OptionClause>,
}

impl SkylineStmt {
    /// Looks an option up by case-insensitive name (last one wins).
    pub fn option(&self, name: &str) -> Option<&OptionClause> {
        self.options
            .iter()
            .rev()
            .find(|o| o.name.eq_ignore_ascii_case(name))
    }
}

/// A `SELECT TOP k …` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Result size K.
    pub k: u64,
    pub k_span: Span,
    /// Frames or windows.
    pub target: Target,
    /// Dataset name, as written.
    pub source: String,
    pub source_span: Span,
    /// Scoring UDF call; `None` = the dataset's default score.
    pub score: Option<ScoreCall>,
    /// Processing engine; `None` = Everest.
    pub engine: Option<(String, Span)>,
    /// `EVERY <n> FRAMES EMIT` — continuous emission stride; `None` runs
    /// the query once over the whole video.
    pub every: Option<(u64, Span)>,
    /// `WITHIN <n> ORACLE CALLS` — hard cap on Phase-2 oracle calls;
    /// exceeding it yields a degraded (anytime) answer.
    pub within: Option<(u64, Span)>,
    /// `WITH` options in source order.
    pub options: Vec<OptionClause>,
}

/// What the query ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Frames,
    /// Tumbling when `slide` is `None` (slide = len), else hopping/sliding.
    Windows {
        len: u64,
        len_span: Span,
        slide: Option<(u64, Span)>,
    },
}

/// A scoring-function call, e.g. `count(car)` or `tailgating()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreCall {
    pub name: String,
    pub name_span: Span,
    pub args: Vec<Literal>,
    /// Span of the whole call (for incompatibility diagnostics).
    pub span: Span,
}

/// One `WITH` option, e.g. `CONFIDENCE 0.9`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionClause {
    pub name: String,
    pub name_span: Span,
    pub value: Literal,
}

/// A literal argument or option value.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    pub value: LiteralValue,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum LiteralValue {
    Int(u64),
    Float(f64),
    /// Bare word or quoted string.
    Word(String),
}

impl Literal {
    /// The literal as a float, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self.value {
            LiteralValue::Int(v) => Some(v as f64),
            LiteralValue::Float(v) => Some(v),
            LiteralValue::Word(_) => None,
        }
    }

    /// The literal as an unsigned integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self.value {
            LiteralValue::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The literal as a word/string.
    pub fn as_word(&self) -> Option<&str> {
        match &self.value {
            LiteralValue::Word(s) => Some(s),
            _ => None,
        }
    }

    /// Display form for plans and error messages.
    pub fn display(&self) -> String {
        match &self.value {
            LiteralValue::Int(v) => v.to_string(),
            LiteralValue::Float(v) => format!("{v}"),
            LiteralValue::Word(s) => s.clone(),
        }
    }
}

impl SelectStmt {
    /// Looks an option up by case-insensitive name (last one wins, like SQL
    /// session settings).
    pub fn option(&self, name: &str) -> Option<&OptionClause> {
        self.options
            .iter()
            .rev()
            .find(|o| o.name.eq_ignore_ascii_case(name))
    }

    /// Canonical source rendering. Parsing the result yields the same
    /// statement back (modulo spans) — pinned by the parser's round-trip
    /// test.
    pub fn display(&self) -> String {
        let mut out = format!("SELECT TOP {} ", self.k);
        match self.target {
            Target::Frames => out.push_str("FRAMES"),
            Target::Windows { len, slide, .. } => {
                out.push_str(&format!("WINDOWS OF {len} FRAMES"));
                if let Some((s, _)) = slide {
                    out.push_str(&format!(" SLIDE {s}"));
                }
            }
        }
        out.push_str(&format!(" FROM '{}'", self.source));
        if let Some(score) = &self.score {
            let args: Vec<String> = score.args.iter().map(|a| a.display()).collect();
            out.push_str(&format!(" SCORE {}({})", score.name, args.join(", ")));
        }
        if let Some((engine, _)) = &self.engine {
            out.push_str(&format!(" USING {engine}"));
        }
        if let Some((n, _)) = self.every {
            out.push_str(&format!(" EVERY {n} FRAMES EMIT"));
        }
        if let Some((n, _)) = self.within {
            out.push_str(&format!(" WITHIN {n} ORACLE CALLS"));
        }
        if !self.options.is_empty() {
            let opts: Vec<String> = self
                .options
                .iter()
                .map(|o| format!("{} {}", o.name, o.value.display()))
                .collect();
            out.push_str(&format!(" WITH {}", opts.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: LiteralValue) -> Literal {
        Literal {
            value: v,
            span: Span::new(0, 0),
        }
    }

    #[test]
    fn literal_coercions() {
        assert_eq!(lit(LiteralValue::Int(5)).as_f64(), Some(5.0));
        assert_eq!(lit(LiteralValue::Float(0.9)).as_f64(), Some(0.9));
        assert_eq!(lit(LiteralValue::Word("x".into())).as_f64(), None);
        assert_eq!(lit(LiteralValue::Int(5)).as_u64(), Some(5));
        assert_eq!(
            lit(LiteralValue::Float(5.0)).as_u64(),
            None,
            "floats never coerce to int"
        );
        assert_eq!(lit(LiteralValue::Word("car".into())).as_word(), Some("car"));
    }

    #[test]
    fn last_duplicate_option_wins() {
        let mk = |name: &str, v: u64| OptionClause {
            name: name.into(),
            name_span: Span::new(0, 0),
            value: lit(LiteralValue::Int(v)),
        };
        let stmt = SelectStmt {
            k: 1,
            k_span: Span::new(0, 0),
            target: Target::Frames,
            source: "x".into(),
            source_span: Span::new(0, 0),
            score: None,
            engine: None,
            every: None,
            within: None,
            options: vec![mk("seed", 1), mk("SEED", 2)],
        };
        assert_eq!(stmt.option("seed").unwrap().value.as_u64(), Some(2));
        assert!(stmt.option("batch").is_none());
    }
}
