//! EVQL execution: a [`Session`] turns statements into answers.
//!
//! The session owns the [`SessionSettings`] (mutable via `SET`) and a
//! **prepared-video cache**: Phase 1 (CMDN training + populating `D0`) runs
//! once per `(dataset, score, scale, seed, step)` and is reused by every
//! later query — the Focus-style offline-ingestion mode §4.2 describes
//! ("Phase 1 can be done offline during data ingestion"). Reported
//! simulated time always includes the full Phase-1 charge, as the paper's
//! end-to-end numbers do; [`ExecStats::phase1_cached`] records whether the
//! *wall-clock* work was reused. The cache is LRU-bounded
//! ([`DEFAULT_CACHE_CAPACITY`], adjustable via
//! [`Session::set_cache_capacity`]) so sessions touching many distinct
//! `(dataset, score, scale, seed, step)` combinations can't grow memory
//! without limit.

use crate::analyze::{analyze, SessionSettings};
use crate::ast::Statement;
use crate::catalog::{catalog, ScoreFn, SourceEntry};
use crate::error::{ErrorKind, EvqlError};
use crate::parser::parse;
use crate::plan::{Engine, PlanTarget, QueryPlan};
use crate::shared::{CacheKey, SharedCache};
use everest_core::baselines::{
    cheap_scan, cmdn_only, scan_and_test, select_and_topk_calibrated, topk_indices, BaselineResult,
};
use everest_core::budget::{CancelToken, QueryBudget, Termination};
use everest_core::cleaner::{CleanerConfig, CleaningOracle};
use everest_core::dist::DiscreteDist;
use everest_core::metrics::{evaluate_topk, GroundTruth, ResultQuality};
use everest_core::phase1::Phase1Config;
use everest_core::pipeline::{Everest, PreparedVideo, QueryReport};
use everest_core::stream::{batch_reference, StreamAnswer, StreamConfig, StreamTopK};
use everest_core::window::{exact_window_scores, sliding_windows, WindowInfo};
use everest_core::xtuple::ItemId;
use everest_models::{
    ExactScoreOracle, FlakyOracle, HogScorer, Oracle, OracleError, RetryingOracle, TinyYoloScorer,
};
use everest_nn::train::TrainConfig;
use everest_nn::HyperGrid;
use everest_video::store::DecodeCostModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One answer row: a frame or window with its confirmed/exact score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerRow {
    /// 1-based rank.
    pub rank: usize,
    /// Frame range `[start, end)` (frames report a 1-frame range).
    pub start_frame: usize,
    pub end_frame: usize,
    /// Video timestamp of `start_frame`, seconds.
    pub time_sec: f64,
    /// The engine's score for this item (oracle-confirmed under Everest's
    /// certain-result condition; exact ground truth for baselines).
    pub score: f64,
}

/// Run statistics attached to a query answer.
#[derive(Debug, Clone)]
pub struct ExecStats {
    pub engine: Engine,
    /// Frames in the (scaled) video.
    pub n_frames: usize,
    /// Rankable items (frames or windows).
    pub n_items: usize,
    /// `Pr(R̂ = R)` at termination (Everest engine only).
    pub confidence: Option<f64>,
    pub converged: Option<bool>,
    /// Why Phase-2 cleaning stopped (Everest engine only): converged, or
    /// a degraded exit (budget, deadline, cancellation, oracle failure).
    /// Part of the canonical answer — deterministic given the fault
    /// schedule.
    pub termination: Option<Termination>,
    pub iterations: Option<usize>,
    pub cleaned: Option<usize>,
    /// Oracle retries performed under `WITH FLAKY` fault injection
    /// (None without fault injection). Not part of the canonical answer.
    pub oracle_retries: Option<u64>,
    /// Circuit-breaker trips under `WITH FLAKY` fault injection.
    pub breaker_trips: Option<u64>,
    /// Simulated end-to-end latency, seconds.
    pub sim_seconds: f64,
    /// Simulated scan-and-test latency (the speedup denominator′s
    /// numerator — §4's baseline).
    pub scan_seconds: f64,
    /// `scan_seconds / sim_seconds`.
    pub speedup: f64,
    /// Tie-aware quality vs. exact ground truth (None when the engine
    /// returned fewer than K items).
    pub quality: Option<ResultQuality>,
    /// Real wall-clock time of the whole request.
    pub wall: Duration,
    /// Whether Phase 1 came from the session cache.
    pub phase1_cached: bool,
}

/// A query answer: rows + stats + the plan it ran.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub rows: Vec<AnswerRow>,
    pub stats: ExecStats,
    pub plan: QueryPlan,
}

/// What executing a statement produces.
#[derive(Debug, Clone)]
pub enum Output {
    /// A `SELECT TOP` answer.
    Rows(QueryOutput),
    /// A `SELECT SKYLINE` answer.
    Skyline(SkylineOutput),
    /// A continuous `SELECT TOP … EVERY n FRAMES EMIT` answer.
    Stream(StreamOutput),
    /// `SHOW` / `SET` / `EXPLAIN` text.
    Message(String),
}

/// A continuous query's answer: one [`StreamAnswer`] per emit point.
#[derive(Debug, Clone)]
pub struct StreamOutput {
    /// Per-emit answers in arrival order. Frame ids are x-tuple ids on the
    /// retained stream; [`StreamOutput::video_frame`] maps them back.
    pub answers: Vec<StreamAnswer>,
    /// Retained video-frame number of each arriving x-tuple.
    pub retained: Vec<usize>,
    pub stats: ExecStats,
    pub plan: QueryPlan,
}

/// One skyline answer row: a Pareto-optimal frame with its score vector.
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineRow {
    pub frame: usize,
    pub time_sec: f64,
    /// Oracle-confirmed scores, one per dimension (same order as
    /// [`SkylineOutput::score_names`]).
    pub scores: Vec<f64>,
}

/// A `SELECT SKYLINE` answer.
#[derive(Debug, Clone)]
pub struct SkylineOutput {
    pub rows: Vec<SkylineRow>,
    /// Display names of the dimensions.
    pub score_names: Vec<String>,
    pub stats: ExecStats,
    pub plan: crate::plan::SkylinePlan,
}

/// One cached Phase-1 preparation: the prepared video plus the exact
/// oracle it was built against. Public so [`crate::shared::SharedCache`]
/// (and the serve daemon inspecting it) can store real entries.
pub struct PreparedEntry {
    /// Phase-1 artifacts for one `(dataset, score, scale, seed, step)`.
    pub prepared: PreparedVideo,
    /// The exact-score oracle Phase 2 confirms against.
    pub oracle: ExactScoreOracle,
}

/// Default cap on cached Phase-1 preparations. Each entry holds a full
/// relation + mixtures + trained CMDN for one `(dataset, score, scale,
/// seed, step)` combination — a handful covers an interactive session,
/// while an unbounded map would grow with every distinct query shape.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

/// An EVQL session: settings + LRU-bounded prepared-video cache.
///
/// The cache is a [`SharedCache`]: private to this session by default,
/// but [`Session::with_shared_cache`] lets a pool of sessions (one per
/// serve-daemon connection) share a single LRU of Phase-1 preparations
/// with single-flight builds.
pub struct Session {
    pub settings: SessionSettings,
    cache: SharedCache,
    /// Cooperative cancellation checked between cleaning batches of every
    /// query this session runs (see [`Session::set_cancel_token`]).
    cancel: Option<CancelToken>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    pub fn new() -> Self {
        Session::with_settings(SessionSettings::default())
    }

    pub fn with_settings(settings: SessionSettings) -> Self {
        Session::with_shared_cache(settings, SharedCache::with_capacity(DEFAULT_CACHE_CAPACITY))
    }

    /// A session whose prepared-video cache is shared with other
    /// sessions (every clone of `cache` sees the same entries).
    pub fn with_shared_cache(settings: SessionSettings, cache: SharedCache) -> Self {
        Session {
            settings,
            cache,
            cancel: None,
        }
    }

    /// Installs (or clears) a cooperative cancel token. Every subsequent
    /// query checks it between cleaning batches: a fired token stops
    /// Phase 2 at the next batch boundary and the query returns a
    /// degraded answer with [`Termination::Cancelled`]. The serve daemon
    /// installs one per query so a client disconnect aborts the work.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// A clone of this session's cache handle, for sharing with further
    /// sessions or for `SHOW CACHES`-style introspection.
    pub fn shared_cache(&self) -> SharedCache {
        self.cache.clone()
    }

    /// Current cap on cached Phase-1 preparations.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Re-caps the prepared-video cache (≥ 1), evicting least-recently
    /// used entries immediately if the new cap is smaller. With a shared
    /// cache this re-caps every session sharing it.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Parses, analyzes and executes one statement.
    pub fn execute(&mut self, src: &str) -> Result<Output, EvqlError> {
        match parse(src)? {
            Statement::Select(stmt) => {
                let plan = analyze(&stmt, &self.settings)?;
                if plan.emit_every.is_some() {
                    return Ok(Output::Stream(self.open_stream(plan)?.finish()?));
                }
                Ok(Output::Rows(self.run(plan)?))
            }
            Statement::Skyline(stmt) => {
                let plan = crate::analyze::analyze_skyline(&stmt, &self.settings)?;
                Ok(Output::Skyline(self.run_skyline(plan)?))
            }
            Statement::Explain(stmt) => {
                let plan = analyze(&stmt, &self.settings)?;
                Ok(Output::Message(plan.explain()))
            }
            Statement::ExplainSkyline(stmt) => {
                let plan = crate::analyze::analyze_skyline(&stmt, &self.settings)?;
                Ok(Output::Message(plan.explain()))
            }
            Statement::Show { what, span } => self.show(&what, span).map(Output::Message),
            Statement::Set { name, value, span } => self
                .settings
                .apply(&name, &value, span)
                .map(Output::Message),
        }
    }

    /// Number of cached Phase-1 preparations.
    pub fn cached_preparations(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached Phase-1 work (counted as a reload in
    /// [`crate::shared::CacheStats`]).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    // ---- SHOW ----

    fn show(&self, what: &str, span: crate::token::Span) -> Result<String, EvqlError> {
        match what.to_ascii_lowercase().as_str() {
            "datasets" => {
                let mut out = String::from(
                    "dataset                n_frames(full)  at-scale  fps   default score   description\n",
                );
                for e in catalog() {
                    out.push_str(&format!(
                        "{:<22} {:>14}  {:>8}  {:<5} {:<15} {}\n",
                        e.name,
                        e.n_frames_full,
                        e.scaled_frames(self.settings.scale),
                        e.fps,
                        e.default_score.display(),
                        e.description,
                    ));
                }
                Ok(out)
            }
            "scores" => Ok("count(<class>)   objects of a class per frame (classes: car, person, boat, bus, truck)\n\
                 coverage()       total object bounding-box area, % of frame (counting datasets; skyline dim)\n\
                 tailgating()     depth-estimator tailgating degree (dashcam datasets)\n\
                 sentiment()      visual-sentimentalizer happiness (vlog datasets)\n"
                .into()),
            "engines" => {
                let mut out = String::new();
                for e in Engine::all() {
                    out.push_str(&format!(
                        "{:<12} aliases: {}\n",
                        e.display(),
                        e.aliases().join(", ")
                    ));
                }
                Ok(out)
            }
            "settings" => Ok(format!(
                "scale      = {} (datasets shrink by 1/{})\n\
                 confidence = {}\n\
                 seed       = {}\n\
                 sample     = {}\n\
                 batch      = {}\n\
                 resort     = {}\n",
                self.settings.scale,
                self.settings.scale,
                self.settings.confidence,
                self.settings.seed,
                self.settings.sample,
                self.settings.batch,
                self.settings.resort,
            )),
            other => Err(EvqlError::new(
                ErrorKind::Unknown {
                    what: "SHOW target",
                    name: other.into(),
                    suggestion: crate::error::suggest(
                        other,
                        ["datasets", "scores", "engines", "settings"],
                    ),
                },
                span,
            )),
        }
    }

    // ---- SELECT ----

    fn run(&mut self, plan: QueryPlan) -> Result<QueryOutput, EvqlError> {
        // lint:allow(det-wallclock): feeds the reported wall_ms stat only;
        // query answers never branch on wall time.
        let started = Instant::now();
        // Phase 1 (CMDN training + D0) is only charged to engines that use
        // a proxy model; pure scans get the oracle directly.
        let needs_phase1 = matches!(
            plan.engine,
            Engine::Everest | Engine::CmdnOnly | Engine::SelectTopk
        );
        let (entry, phase1_cached) = if needs_phase1 {
            let (e, cached) = self.prepared(&plan);
            (Some(e), cached)
        } else {
            (None, false)
        };
        let standalone_oracle;
        let oracle: &ExactScoreOracle = match &entry {
            Some(e) => &e.oracle,
            None => {
                standalone_oracle = plan
                    .source
                    .build(plan.score, plan.scale_divisor, plan.seed)
                    .oracle;
                &standalone_oracle
            }
        };
        let fps = plan.source.fps;
        let n = plan.n_frames;
        let decode = DecodeCostModel::default();
        let scan_seconds = n as f64 * oracle.cost_per_frame() + decode.sequential_scan_cost(n);

        // WITH FLAKY <seed>: seeded fault injection + deterministic
        // retry/backoff around the exact oracle. A fresh wrapper per
        // query means replaying the same statement replays the same
        // fault schedule bit-for-bit.
        let flaky = plan
            .flaky_seed
            .map(|seed| RetryingOracle::new(FlakyOracle::new(oracle.clone(), seed)));
        let query_oracle: &dyn Oracle = match &flaky {
            Some(f) => f,
            None => oracle,
        };

        let cleaner = CleanerConfig {
            k: plan.k,
            thres: plan.thres,
            batch_size: plan.batch,
            resort_period: plan.resort_period,
            max_cleanings: None,
            budget: QueryBudget {
                max_oracle_calls: plan.max_oracle_calls,
                deadline_sim_seconds: plan.deadline,
                cancel: self.cancel.clone(),
            },
        };

        let (rows, confidence, converged, termination, iterations, cleaned, sim_seconds, quality) =
            match (plan.engine, plan.target) {
                (Engine::Everest, PlanTarget::Frames) => {
                    let report = entry.as_ref().expect("phase-1 engine").prepared.query_topk(
                        query_oracle,
                        plan.k,
                        plan.thres,
                        &cleaner,
                    );
                    let quality = frame_quality(oracle, &report, plan.k);
                    (
                        report_rows(&report, fps),
                        Some(report.confidence),
                        Some(report.converged),
                        Some(report.termination),
                        Some(report.iterations),
                        Some(report.cleaned),
                        report.sim_seconds(),
                        quality,
                    )
                }
                (
                    Engine::Everest,
                    PlanTarget::Windows {
                        len,
                        slide,
                        sample_frac,
                    },
                ) => {
                    let report = if slide == len {
                        entry
                            .as_ref()
                            .expect("phase-1 engine")
                            .prepared
                            .query_topk_windows(
                                query_oracle,
                                plan.k,
                                plan.thres,
                                len,
                                sample_frac,
                                &cleaner,
                            )
                    } else {
                        entry
                            .as_ref()
                            .expect("phase-1 engine")
                            .prepared
                            .query_topk_sliding_windows(
                                query_oracle,
                                plan.k,
                                plan.thres,
                                len,
                                slide,
                                sample_frac,
                                &cleaner,
                            )
                    };
                    let windows = sliding_windows(n, len, slide);
                    let quality = window_quality(oracle, &windows, &report, plan.k, slide);
                    (
                        report_rows(&report, fps),
                        Some(report.confidence),
                        Some(report.converged),
                        Some(report.termination),
                        Some(report.iterations),
                        Some(report.cleaned),
                        report.sim_seconds(),
                        quality,
                    )
                }
                (Engine::Scan, PlanTarget::Frames) => {
                    let result = scan_and_test(oracle, plan.k);
                    let quality = baseline_quality(oracle, &result, plan.k);
                    let rows = baseline_rows(&result, oracle, fps);
                    (
                        rows,
                        None,
                        None,
                        None,
                        None,
                        None,
                        result.sim_seconds,
                        quality,
                    )
                }
                (Engine::Scan, PlanTarget::Windows { len, slide, .. }) => {
                    let windows = sliding_windows(n, len, slide);
                    let w_scores = exact_window_scores(oracle.all_scores(), &windows);
                    let top = topk_indices(&w_scores, plan.k);
                    let rows: Vec<AnswerRow> = top
                        .iter()
                        .enumerate()
                        .map(|(i, &wid)| AnswerRow {
                            rank: i + 1,
                            start_frame: windows[wid].start,
                            end_frame: windows[wid].end,
                            time_sec: windows[wid].start as f64 / fps,
                            score: w_scores[wid],
                        })
                        .collect();
                    let truth = GroundTruth::new(w_scores);
                    let quality = Some(evaluate_topk(&truth, &top, plan.k));
                    (rows, None, None, None, None, None, scan_seconds, quality)
                }
                (Engine::CmdnOnly, PlanTarget::Frames) => {
                    let result =
                        cmdn_only(&entry.as_ref().expect("phase-1 engine").prepared, plan.k);
                    let quality = baseline_quality(oracle, &result, plan.k);
                    let rows = baseline_rows(&result, oracle, fps);
                    (
                        rows,
                        None,
                        None,
                        None,
                        None,
                        None,
                        result.sim_seconds,
                        quality,
                    )
                }
                (Engine::Hog, PlanTarget::Frames) => {
                    let scorer = HogScorer::new(oracle.clone(), plan.seed ^ 0x09);
                    let result = cheap_scan(&scorer, plan.k);
                    let quality = baseline_quality(oracle, &result, plan.k);
                    let rows = baseline_rows(&result, oracle, fps);
                    (
                        rows,
                        None,
                        None,
                        None,
                        None,
                        None,
                        result.sim_seconds,
                        quality,
                    )
                }
                (Engine::TinyYolo, PlanTarget::Frames) => {
                    let scorer = TinyYoloScorer::new(oracle.clone(), plan.seed ^ 0x77);
                    let result = cheap_scan(&scorer, plan.k);
                    let quality = baseline_quality(oracle, &result, plan.k);
                    let rows = baseline_rows(&result, oracle, fps);
                    (
                        rows,
                        None,
                        None,
                        None,
                        None,
                        None,
                        result.sim_seconds,
                        quality,
                    )
                }
                (Engine::SelectTopk, PlanTarget::Frames) => {
                    let result = select_and_topk_calibrated(
                        &entry.as_ref().expect("phase-1 engine").prepared,
                        oracle,
                        plan.k,
                        0.9,
                    );
                    let quality = baseline_quality(oracle, &result, plan.k);
                    let rows = baseline_rows(&result, oracle, fps);
                    (
                        rows,
                        None,
                        None,
                        None,
                        None,
                        None,
                        result.sim_seconds,
                        quality,
                    )
                }
                (engine, PlanTarget::Windows { .. }) => {
                    // analyze() rejects this; keep a defensive error rather
                    // than a panic for forward compatibility.
                    return Err(EvqlError::new(
                        ErrorKind::Exec(format!(
                            "engine `{}` cannot run window queries",
                            engine.display()
                        )),
                        crate::token::Span::point(0),
                    ));
                }
            };

        let sim = sim_seconds.max(f64::MIN_POSITIVE);
        let (oracle_retries, breaker_trips) = match &flaky {
            Some(f) => (Some(f.retries()), Some(f.breaker_trips())),
            None => (None, None),
        };
        Ok(QueryOutput {
            rows,
            stats: ExecStats {
                engine: plan.engine,
                n_frames: n,
                n_items: plan.n_items(),
                confidence,
                converged,
                termination,
                iterations,
                cleaned,
                oracle_retries,
                breaker_trips,
                sim_seconds,
                scan_seconds,
                speedup: scan_seconds / sim,
                quality,
                wall: started.elapsed(),
                phase1_cached,
            },
            plan,
        })
    }

    /// Returns the cached Phase-1 preparation for a plan, building it on a
    /// miss. The bool is `true` on a cache hit.
    fn prepared(&mut self, plan: &QueryPlan) -> (Arc<PreparedEntry>, bool) {
        self.prepared_for(
            &plan.source,
            plan.score,
            plan.scale_divisor,
            plan.seed,
            plan.quant_step,
        )
    }

    /// Cache lookup/build keyed by `(dataset, score, scale, seed, step)`.
    /// Builds are single-flight under a shared cache: concurrent sessions
    /// racing on the same key block until one of them finishes Phase 1.
    fn prepared_for(
        &mut self,
        source: &SourceEntry,
        score: ScoreFn,
        scale: usize,
        seed: u64,
        step: f64,
    ) -> (Arc<PreparedEntry>, bool) {
        let key = CacheKey {
            source: source.name.to_ascii_lowercase(),
            score: score.display(),
            scale,
            seed,
            step_bits: step.to_bits(),
        };
        self.cache.get_or_build(&key, || {
            let built = source.build(score, scale, seed);
            let cfg = phase1_recipe(step, seed);
            let prepared = Everest::prepare(built.video.as_ref(), &built.oracle, &cfg);
            PreparedEntry {
                prepared,
                oracle: built.oracle,
            }
        })
    }

    /// Opens a continuous query as a [`StreamSession`] that yields one
    /// answer per emit point. The statement must carry an
    /// `EVERY <n> FRAMES EMIT` clause.
    pub fn stream(&mut self, src: &str) -> Result<StreamSession, EvqlError> {
        match parse(src)? {
            Statement::Select(stmt) => {
                let plan = analyze(&stmt, &self.settings)?;
                if plan.emit_every.is_none() {
                    return Err(EvqlError::new(
                        ErrorKind::Incompatible(
                            "Session::stream needs a continuous statement; \
                             add EVERY <n> FRAMES EMIT"
                                .into(),
                        ),
                        stmt.k_span,
                    ));
                }
                self.open_stream(plan)
            }
            _ => Err(EvqlError::new(
                ErrorKind::Incompatible(
                    "Session::stream needs a SELECT TOP … EVERY <n> FRAMES EMIT statement".into(),
                ),
                crate::token::Span::point(0),
            )),
        }
    }

    /// Builds the streaming engine for a validated continuous plan.
    fn open_stream(&mut self, plan: QueryPlan) -> Result<StreamSession, EvqlError> {
        // lint:allow(det-wallclock): feeds the reported wall_ms stat only;
        // stream answers never branch on wall time.
        let started = Instant::now();
        let (entry, phase1_cached) = self.prepared(&plan);
        let rel = &entry.prepared.phase1.relation;
        // The arriving unit is a retained x-tuple: the difference detector
        // may drop near-duplicate frames, so the emit stride (validated in
        // video frames) is clamped to the stream length to guarantee the
        // query emits at least once.
        // Frames labelled during Phase-1 training enter D0 certain; they
        // arrive as point masses (the oracle re-confirms them for free in
        // simulated cost terms only if the cleaner ever picks one).
        let dists: Vec<DiscreteDist> = (0..rel.len())
            .map(|id| match rel.dist(id) {
                Some(d) => d.clone(),
                None => DiscreteDist::certain(
                    // lint:allow(panic-unwrap): dist() is None iff the item is certain
                    rel.certain_bucket(id).expect("no dist means certain") as usize,
                    rel.max_bucket(),
                ),
            })
            .collect();
        // lint:allow(panic-unwrap): both callers branch on emit_every.is_some()
        let stride = plan.emit_every.expect("checked by caller").min(dists.len());
        let cfg = StreamConfig {
            k: plan.k,
            thres: plan.thres,
            emit_every: stride.max(1),
            window: plan.stream_window,
            budget_per_emit: plan.stream_budget,
            quant_step: rel.step(),
            max_bucket: rel.max_bucket(),
            budget: QueryBudget {
                max_oracle_calls: plan.max_oracle_calls,
                deadline_sim_seconds: plan.deadline,
                cancel: self.cancel.clone(),
            },
            ..StreamConfig::default()
        };
        let retained = entry.prepared.phase1.segments.retained().to_vec();
        let oracle = RetainedOracle::new(
            entry.oracle.clone(),
            retained.clone(),
            rel.step(),
            rel.max_bucket(),
            plan.flaky_seed,
        );
        let n = plan.n_frames;
        let decode = DecodeCostModel::default();
        let scan_seconds =
            n as f64 * entry.oracle.cost_per_frame() + decode.sequential_scan_cost(n);
        Ok(StreamSession {
            engine: StreamTopK::new(cfg.clone()),
            cfg,
            plan,
            dists,
            retained,
            oracle,
            fed: 0,
            answers: Vec::new(),
            phase1_seconds: entry.prepared.phase1.clock.total(),
            phase1_cached,
            scan_seconds,
            started,
        })
    }

    /// Executes a validated skyline plan (`everest-core::skyline`).
    ///
    /// Phase 1 runs once per dimension (cached independently, so a later
    /// Top-K on `count(...)` reuses the skyline's first dimension). All
    /// dimensions derive from the *same* detector pass, so confirming a
    /// frame charges one oracle invocation regardless of dimensionality.
    fn run_skyline(&mut self, plan: crate::plan::SkylinePlan) -> Result<SkylineOutput, EvqlError> {
        use everest_core::skyline::{
            run_skyline_cleaner, zip_relations, SkylineConfig, SkylineOracle,
        };

        // lint:allow(det-wallclock): feeds the reported wall_ms stat only;
        // skyline answers never branch on wall time.
        let started = Instant::now();
        let mut entries = Vec::with_capacity(plan.scores.len());
        let mut all_cached = true;
        for &score in &plan.scores {
            let (entry, cached) = self.prepared_for(
                &plan.source,
                score,
                plan.scale_divisor,
                plan.seed,
                score.default_step(),
            );
            all_cached &= cached;
            entries.push(entry);
        }
        // The difference detector is score-independent: all dimensions
        // must see the same retained frames.
        let retained = entries[0].prepared.phase1.segments.retained().to_vec();
        for e in &entries[1..] {
            if e.prepared.phase1.segments.retained() != retained.as_slice() {
                return Err(EvqlError::new(
                    ErrorKind::Exec("phase-1 segmentations diverged across dimensions".into()),
                    crate::token::Span::point(0),
                ));
            }
        }

        let relations: Vec<&everest_core::xtuple::UncertainRelation> = entries
            .iter()
            .map(|e| &e.prepared.phase1.relation)
            .collect();
        let mut rel = zip_relations(&relations);

        struct MultiOracle<'a> {
            oracles: Vec<&'a ExactScoreOracle>,
            steps: Vec<f64>,
            max_buckets: Vec<usize>,
            retained: &'a [usize],
            frames_scored: usize,
        }
        impl SkylineOracle for MultiOracle<'_> {
            fn clean_batch(&mut self, items: &[usize]) -> Vec<Vec<u32>> {
                let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
                // One detector pass yields every dimension's score.
                self.frames_scored += frames.len();
                let per_dim: Vec<Vec<f64>> = self
                    .oracles
                    .iter()
                    .map(|o| o.score_batch(&frames))
                    .collect();
                (0..frames.len())
                    .map(|i| {
                        per_dim
                            .iter()
                            .enumerate()
                            .map(|(j, scores)| {
                                ((scores[i] / self.steps[j]).round().max(0.0) as usize)
                                    .min(self.max_buckets[j]) as u32
                            })
                            .collect()
                    })
                    .collect()
            }
        }
        let mut oracle = MultiOracle {
            oracles: entries.iter().map(|e| &e.oracle).collect(),
            steps: entries
                .iter()
                .map(|e| e.prepared.phase1.relation.step())
                .collect(),
            max_buckets: entries
                .iter()
                .map(|e| e.prepared.phase1.relation.max_bucket())
                .collect(),
            retained: &retained,
            frames_scored: 0,
        };

        let outcome = run_skyline_cleaner(
            &mut rel,
            &mut oracle,
            &SkylineConfig {
                thres: plan.thres,
                batch_size: plan.batch,
                max_cleanings: None,
            },
        );

        // Simulated cost: both Phase-1 clocks + one oracle charge per
        // confirmed frame (all dimensions share the detector pass).
        let decode = DecodeCostModel::default();
        let per_frame = entries
            .iter()
            .map(|e| e.oracle.cost_per_frame())
            .fold(0.0f64, f64::max);
        let sim_seconds: f64 = entries
            .iter()
            .map(|e| e.prepared.phase1.clock.total())
            .sum::<f64>()
            + oracle.frames_scored as f64 * per_frame;
        let n = plan.n_frames;
        let scan_seconds = n as f64 * per_frame + decode.sequential_scan_cost(n);

        let mut rows: Vec<SkylineRow> = outcome
            .skyline
            .iter()
            .map(|&id| {
                let frame = retained[id];
                SkylineRow {
                    frame,
                    time_sec: frame as f64 / plan.source.fps,
                    scores: entries
                        .iter()
                        .map(|e| e.oracle.all_scores()[frame])
                        .collect(),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.scores[0]
                .partial_cmp(&a.scores[0])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        Ok(SkylineOutput {
            rows,
            score_names: plan.scores.iter().map(|s| s.display()).collect(),
            stats: ExecStats {
                engine: Engine::Everest,
                n_frames: n,
                n_items: rel.len(),
                confidence: Some(outcome.confidence),
                converged: Some(outcome.converged),
                termination: None,
                iterations: Some(outcome.iterations),
                cleaned: Some(outcome.cleaned),
                oracle_retries: None,
                breaker_trips: None,
                sim_seconds,
                scan_seconds,
                speedup: scan_seconds / sim_seconds.max(f64::MIN_POSITIVE),
                quality: None,
                wall: started.elapsed(),
                phase1_cached: all_cached,
            },
            plan,
        })
    }
}

/// A [`CleaningOracle`] over the retained stream: x-tuple id → retained
/// video frame → exact detector score → quantized bucket (the same mapping
/// `pipeline::query_topk` uses). With a flaky seed the scoring path runs
/// through seeded fault injection + deterministic retry/backoff.
struct RetainedOracle {
    oracle: ExactScoreOracle,
    flaky: Option<RetryingOracle<FlakyOracle<ExactScoreOracle>>>,
    retained: Vec<usize>,
    step: f64,
    max_bucket: usize,
    cleaned: usize,
}

impl RetainedOracle {
    fn new(
        oracle: ExactScoreOracle,
        retained: Vec<usize>,
        step: f64,
        max_bucket: usize,
        flaky_seed: Option<u64>,
    ) -> Self {
        let flaky = flaky_seed.map(|s| RetryingOracle::new(FlakyOracle::new(oracle.clone(), s)));
        RetainedOracle {
            oracle,
            flaky,
            retained,
            step,
            max_bucket,
            cleaned: 0,
        }
    }

    /// The oracle the fallible path scores through.
    fn scoring(&self) -> &dyn Oracle {
        match &self.flaky {
            Some(f) => f,
            None => &self.oracle,
        }
    }

    fn buckets(&self, scores: Vec<f64>) -> Vec<u32> {
        scores
            .into_iter()
            .map(|s| ((s / self.step).round().max(0.0) as usize).min(self.max_bucket) as u32)
            .collect()
    }
}

impl CleaningOracle for RetainedOracle {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
        let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
        self.cleaned += frames.len();
        let scores = self.oracle.score_batch(&frames);
        self.buckets(scores)
    }

    fn try_clean_batch(&mut self, items: &[ItemId]) -> Result<Vec<u32>, OracleError> {
        let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
        let scores = self.scoring().try_score_batch(&frames)?;
        self.cleaned += frames.len();
        Ok(self.buckets(scores))
    }

    fn sim_seconds_spent(&self) -> f64 {
        self.cleaned as f64 * self.oracle.cost_per_frame() + self.scoring().sim_overhead_seconds()
    }
}

/// Opt-in self-check: when this env var is set (and not `0`), every
/// finished stream is replayed as a from-scratch batch reference and the
/// two answer sequences are compared emit-by-emit (the
/// `tests/stream_e2e.rs` equivalence property, enforced at runtime).
pub const STREAM_VERIFY_ENV: &str = "EVEREST_STREAM_VERIFY";

/// An open continuous query: feed-and-emit until the stream is exhausted.
///
/// Yields one [`StreamAnswer`] per emit point via
/// [`next_emit`](StreamSession::next_emit); [`finish`](StreamSession::finish)
/// drains the rest and packages the stats. Oracle confirmations persist
/// across emits, so a frame is never cleaned twice.
pub struct StreamSession {
    plan: QueryPlan,
    cfg: StreamConfig,
    engine: StreamTopK,
    dists: Vec<DiscreteDist>,
    retained: Vec<usize>,
    oracle: RetainedOracle,
    fed: usize,
    answers: Vec<StreamAnswer>,
    phase1_seconds: f64,
    phase1_cached: bool,
    scan_seconds: f64,
    started: Instant,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("arrivals", &self.dists.len())
            .field("fed", &self.fed)
            .field("emits", &self.answers.len())
            .finish_non_exhaustive()
    }
}

impl StreamSession {
    /// The validated plan this stream runs.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Total x-tuples that will arrive (the retained stream length).
    pub fn n_arrivals(&self) -> usize {
        self.dists.len()
    }

    /// Retained video-frame number of stream id `id`.
    pub fn video_frame(&self, id: ItemId) -> usize {
        self.retained[id]
    }

    /// Feeds arrivals until the next emit point; `None` when the stream is
    /// exhausted.
    pub fn next_emit(&mut self) -> Option<&StreamAnswer> {
        while self.fed < self.dists.len() {
            let dist = self.dists[self.fed].clone();
            self.fed += 1;
            if let Some(answer) = self.engine.push_frame(dist, &mut self.oracle) {
                self.answers.push(answer);
                return self.answers.last();
            }
        }
        None
    }

    /// Drains the stream and packages every emitted answer with stats.
    pub fn finish(mut self) -> Result<StreamOutput, EvqlError> {
        while self.next_emit().is_some() {}
        if std::env::var(STREAM_VERIFY_ENV).is_ok_and(|v| v != "0") {
            self.verify_against_batch()?;
        }
        let last = self.answers.last();
        let sim_seconds = self.phase1_seconds + self.oracle.sim_seconds_spent();
        let (oracle_retries, breaker_trips) = match &self.oracle.flaky {
            Some(f) => (Some(f.retries()), Some(f.breaker_trips())),
            None => (None, None),
        };
        let stats = ExecStats {
            engine: Engine::Everest,
            n_frames: self.plan.n_frames,
            n_items: self.dists.len(),
            confidence: last.map(|a| a.confidence),
            converged: last.map(|a| a.converged),
            termination: last.map(|a| a.termination),
            iterations: Some(self.answers.len()),
            cleaned: Some(self.engine.cleaned_total()),
            oracle_retries,
            breaker_trips,
            sim_seconds,
            scan_seconds: self.scan_seconds,
            speedup: self.scan_seconds / sim_seconds.max(f64::MIN_POSITIVE),
            quality: None,
            wall: self.started.elapsed(),
            phase1_cached: self.phase1_cached,
        };
        Ok(StreamOutput {
            answers: self.answers,
            retained: self.retained,
            stats,
            plan: self.plan,
        })
    }

    /// The streaming≡batch equivalence check behind [`STREAM_VERIFY_ENV`]:
    /// replays the whole stream from scratch with per-emit rebuilds and
    /// demands identical answers at every emit point.
    fn verify_against_batch(&mut self) -> Result<(), EvqlError> {
        // A fresh wrapper replays the same fault schedule from call 0.
        let mut oracle = RetainedOracle::new(
            self.oracle.oracle.clone(),
            self.retained.clone(),
            self.cfg.quant_step,
            self.cfg.max_bucket,
            self.plan.flaky_seed,
        );
        let reference = batch_reference(&self.cfg, &self.dists, &mut oracle);
        let mismatch = |what: String| {
            EvqlError::new(
                ErrorKind::Exec(format!(
                    "{STREAM_VERIFY_ENV}: streaming≡batch violated: {what}"
                )),
                crate::token::Span::point(0),
            )
        };
        if reference.len() != self.answers.len() {
            return Err(mismatch(format!(
                "{} streaming emits vs {} batch emits",
                self.answers.len(),
                reference.len()
            )));
        }
        for (live, batch) in self.answers.iter().zip(&reference) {
            if live.topk != batch.topk
                || (live.confidence - batch.confidence).abs() > 1e-9
                || live.render(self.cfg.quant_step) != batch.render(self.cfg.quant_step)
            {
                return Err(mismatch(format!("divergence at emit @{}", live.at_frame)));
            }
        }
        Ok(())
    }
}

/// The Phase-1 recipe EVQL uses: the paper's protocol (random sample →
/// CMDN grid → hold-out NLL selection) at interactive scale.
fn phase1_recipe(quant_step: f64, seed: u64) -> Phase1Config {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    Phase1Config {
        sample_frac: 0.04,
        sample_cap: 800,
        sample_min: 200,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
        conv_channels: vec![6, 12],
        quant_step,
        seed: seed.wrapping_add(0xE7E57),
        threads,
        ..Phase1Config::default()
    }
}

fn report_rows(report: &QueryReport, fps: f64) -> Vec<AnswerRow> {
    report
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| AnswerRow {
            rank: i + 1,
            start_frame: item.range.0,
            end_frame: item.range.1,
            time_sec: item.range.0 as f64 / fps,
            score: item.score,
        })
        .collect()
}

fn baseline_rows(result: &BaselineResult, oracle: &ExactScoreOracle, fps: f64) -> Vec<AnswerRow> {
    result
        .topk
        .iter()
        .enumerate()
        .map(|(i, &frame)| AnswerRow {
            rank: i + 1,
            start_frame: frame,
            end_frame: frame + 1,
            time_sec: frame as f64 / fps,
            score: oracle.all_scores()[frame],
        })
        .collect()
}

fn frame_quality(
    oracle: &ExactScoreOracle,
    report: &QueryReport,
    k: usize,
) -> Option<ResultQuality> {
    if report.items.len() != k {
        return None;
    }
    let truth = GroundTruth::new(oracle.all_scores().to_vec());
    Some(evaluate_topk(&truth, &report.frames(), k))
}

fn baseline_quality(
    oracle: &ExactScoreOracle,
    result: &BaselineResult,
    k: usize,
) -> Option<ResultQuality> {
    if result.topk.len() != k {
        return None;
    }
    let truth = GroundTruth::new(oracle.all_scores().to_vec());
    Some(evaluate_topk(&truth, &result.topk, k))
}

fn window_quality(
    oracle: &ExactScoreOracle,
    windows: &[WindowInfo],
    report: &QueryReport,
    k: usize,
    slide: usize,
) -> Option<ResultQuality> {
    if report.items.len() != k {
        return None;
    }
    let w_scores = exact_window_scores(oracle.all_scores(), windows);
    let truth = GroundTruth::new(w_scores);
    let answer: Vec<usize> = report
        .items
        .iter()
        .map(|item| (item.frame / slide).min(windows.len().saturating_sub(1)))
        .collect();
    Some(evaluate_topk(&truth, &answer, k))
}

// ---- rendering ----

impl QueryOutput {
    /// ASCII rendering for the CLI.
    pub fn render(&self) -> String {
        let fps = self.plan.source.fps;
        let mut out = String::new();
        out.push_str(&format!(
            "rank  frames           t+ (mm:ss)   score\n{}\n",
            "-".repeat(46)
        ));
        for row in &self.rows {
            let mins = (row.time_sec / 60.0).floor() as u64;
            let secs = row.time_sec - mins as f64 * 60.0;
            let range = if row.end_frame - row.start_frame > 1 {
                format!("{}..{}", row.start_frame, row.end_frame)
            } else {
                format!("{}", row.start_frame)
            };
            out.push_str(&format!(
                "{:<5} {:<16} {:>3}:{:05.2}    {:>8.3}\n",
                row.rank, range, mins, secs, row.score
            ));
        }
        out.push_str(&format!("{}\n{}", "-".repeat(46), self.stats.render(fps)));
        out
    }
}

impl ExecStats {
    fn render(&self, _fps: f64) -> String {
        let mut out = format!(
            "engine={}  items={}  sim={:.1}s  scan={:.1}s  speedup={:.1}x",
            self.engine.display(),
            self.n_items,
            self.sim_seconds,
            self.scan_seconds,
            self.speedup,
        );
        if let Some(c) = self.confidence {
            out.push_str(&format!("  confidence={c:.4}"));
        }
        if let Some(t) = self.termination {
            if t.is_degraded() {
                out.push_str(&format!("  termination={t}"));
            }
        }
        if let (Some(r), Some(b)) = (self.oracle_retries, self.breaker_trips) {
            out.push_str(&format!("  retries={r}  breaker-trips={b}"));
        }
        if let (Some(it), Some(cl)) = (self.iterations, self.cleaned) {
            out.push_str(&format!(
                "  iterations={it}  cleaned={cl} ({:.2}%)",
                100.0 * cl as f64 / self.n_items.max(1) as f64
            ));
        }
        if let Some(q) = self.quality {
            out.push_str(&format!(
                "\nquality: precision={:.3}  rank-distance={:.4}  score-error={:.3}",
                q.precision, q.rank_distance, q.score_error
            ));
        }
        if self.phase1_cached {
            out.push_str("\n(phase 1 served from session cache)");
        }
        out.push('\n');
        out
    }
}

impl StreamOutput {
    /// Retained video-frame number of stream id `id`.
    pub fn video_frame(&self, id: ItemId) -> usize {
        self.retained[id]
    }

    /// ASCII rendering for the CLI: one block per emit point, with stream
    /// ids mapped back to video frames.
    pub fn render(&self) -> String {
        let fps = self.plan.source.fps;
        let step = self.plan.quant_step;
        let mut out = format!(
            "continuous top-{} (emit every {} arrivals, {} emits)\n",
            self.plan.k,
            self.plan.emit_every.unwrap_or(0),
            self.answers.len()
        );
        for a in &self.answers {
            out.push_str(&format!(
                "{}\nemit @{:<7} window [{}, {})  confidence {:.6}  {}\n",
                "-".repeat(46),
                a.at_frame,
                a.window_start,
                a.at_frame,
                a.confidence,
                if a.converged {
                    "converged"
                } else if a.termination == Termination::BudgetExhausted {
                    // pre-termination spelling, pinned by the CLI tests
                    "budget-capped"
                } else {
                    a.termination.as_str()
                },
            ));
            out.push_str("rank  frame      t+ (mm:ss)     score\n");
            for (i, &(id, bucket)) in a.topk.iter().enumerate() {
                let frame = self.retained[id];
                let t = frame as f64 / fps;
                let mins = (t / 60.0).floor() as u64;
                let secs = t - mins as f64 * 60.0;
                out.push_str(&format!(
                    "{:<5} {:<8} {:>5}:{:05.2}  {:>8.3}\n",
                    i + 1,
                    frame,
                    mins,
                    secs,
                    bucket as f64 * step,
                ));
            }
        }
        out.push_str(&format!("{}\n{}", "-".repeat(46), self.stats.render(fps)));
        out
    }
}

impl SkylineOutput {
    /// ASCII rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Pareto-optimal frames over ({}):\n",
            self.score_names.join(", ")
        );
        out.push_str("frame      t+ (mm:ss)");
        for name in &self.score_names {
            out.push_str(&format!("  {name:>14}"));
        }
        out.push('\n');
        let width = 22 + 16 * self.score_names.len();
        out.push_str(&format!("{}\n", "-".repeat(width)));
        for row in &self.rows {
            let mins = (row.time_sec / 60.0).floor() as u64;
            let secs = row.time_sec - mins as f64 * 60.0;
            out.push_str(&format!("{:<10} {:>4}:{:05.2}", row.frame, mins, secs));
            for v in &row.scores {
                out.push_str(&format!("  {v:>14.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{}\n{}",
            "-".repeat(width),
            self.stats.render(0.0)
        ));
        out
    }
}

/// Resolves a source entry for tests and the CLI banner.
pub fn resolve_source(name: &str) -> Option<SourceEntry> {
    crate::catalog::source_by_name(name)
}

/// Re-export for CLI convenience.
pub use crate::catalog::ScoreFn as SessionScoreFn;

#[allow(unused)]
fn _assert_scorefn_paths(s: ScoreFn) -> String {
    s.display()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_session() -> Session {
        // Large divisor → every dataset floors at 2 000 frames; queries
        // complete in seconds on CI hardware.
        let mut s = Session::new();
        s.settings.scale = 1_000;
        s
    }

    #[test]
    fn show_and_set_round_trip() {
        let mut s = fast_session();
        match s.execute("SHOW DATASETS").unwrap() {
            Output::Message(m) => {
                assert!(m.contains("Archie") && m.contains("Vlog"), "{m}");
            }
            other => panic!("{other:?}"),
        }
        match s.execute("SET confidence = 0.75").unwrap() {
            Output::Message(m) => assert!(m.contains("0.75"), "{m}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.settings.confidence, 0.75);
        match s.execute("SHOW SETTINGS").unwrap() {
            Output::Message(m) => assert!(m.contains("confidence = 0.75"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn show_unknown_target_suggests() {
        let mut s = fast_session();
        let err = s.execute("SHOW DATASET").unwrap_err();
        assert!(
            err.message().contains("did you mean `datasets`"),
            "{}",
            err.message()
        );
    }

    #[test]
    fn explain_does_not_execute() {
        let mut s = fast_session();
        match s
            .execute("EXPLAIN SELECT TOP 5 FRAMES FROM Archie")
            .unwrap()
        {
            Output::Message(m) => assert!(m.contains("TopK(k=5"), "{m}"),
            other => panic!("{other:?}"),
        }
        match s
            .execute("EXPLAIN SELECT SKYLINE FROM Archie WITH CONFIDENCE 0.8")
            .unwrap()
        {
            Output::Message(m) => {
                assert!(m.contains("Skyline(dims=2, thres=0.8"), "{m}");
                assert!(m.contains("count(car), coverage()"), "{m}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.cached_preparations(), 0, "EXPLAIN must not run Phase 1");
    }

    #[test]
    fn everest_frame_query_end_to_end() {
        let mut s = fast_session();
        let out = match s
            .execute("SELECT TOP 5 FRAMES FROM Archie WITH SEED 3")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert_eq!(out.rows.len(), 5);
        assert!(out.stats.confidence.unwrap() >= 0.9);
        assert_eq!(out.stats.converged, Some(true));
        // rows are rank-ordered with descending scores
        for pair in out.rows.windows(2) {
            assert!(pair[0].score >= pair[1].score);
            assert_eq!(pair[0].rank + 1, pair[1].rank);
        }
        // certain-result condition: scores match ground truth exactly
        let entry = resolve_source("Archie").unwrap();
        let built = entry.build(out.plan.score, out.plan.scale_divisor, out.plan.seed);
        for row in &out.rows {
            assert_eq!(row.score, built.oracle.all_scores()[row.start_frame]);
        }
        // the render path produces a table mentioning the stats
        let text = out.render();
        assert!(text.contains("confidence="), "{text}");
        assert_eq!(s.cached_preparations(), 1);
    }

    #[test]
    fn phase1_cache_reused_across_queries() {
        let mut s = fast_session();
        let first = match s
            .execute("SELECT TOP 5 FRAMES FROM Archie WITH SEED 3")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert!(!first.stats.phase1_cached);
        let second = match s
            .execute("SELECT TOP 10 FRAMES FROM Archie WITH SEED 3")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert!(
            second.stats.phase1_cached,
            "same dataset+score+seed must hit the cache"
        );
        assert_eq!(s.cached_preparations(), 1);
        assert!(
            second.stats.wall < first.stats.wall,
            "cache must save wall time"
        );
        // different seed = different video → miss
        let third = match s
            .execute("SELECT TOP 5 FRAMES FROM Archie WITH SEED 4")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert!(!third.stats.phase1_cached);
        assert_eq!(s.cached_preparations(), 2);
        s.clear_cache();
        assert_eq!(s.cached_preparations(), 0);
    }

    #[test]
    fn scan_engine_returns_exact_topk() {
        let mut s = fast_session();
        let out = match s
            .execute("SELECT TOP 5 FRAMES FROM Archie USING scan WITH SEED 3")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert_eq!(out.rows.len(), 5);
        let q = out.stats.quality.unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.score_error, 0.0);
        assert!(out.stats.confidence.is_none());
        assert!(
            (out.stats.speedup - 1.0).abs() < 1e-9,
            "scan speedup is 1 by definition"
        );
    }

    #[test]
    fn cache_capacity_bounds_and_evicts_lru() {
        let mut s = fast_session();
        s.set_cache_capacity(2);
        assert_eq!(s.cache_capacity(), 2);
        let run = |s: &mut Session, seed: u64| -> bool {
            match s
                .execute(&format!("SELECT TOP 3 FRAMES FROM Archie WITH SEED {seed}"))
                .unwrap()
            {
                Output::Rows(o) => o.stats.phase1_cached,
                other => panic!("{other:?}"),
            }
        };
        assert!(!run(&mut s, 1)); // miss: {1}
        assert!(!run(&mut s, 2)); // miss: {1, 2}
        assert_eq!(s.cached_preparations(), 2);
        assert!(run(&mut s, 1)); // hit bumps 1's recency: LRU is now 2
        assert!(!run(&mut s, 3)); // miss evicts 2: {1, 3}
        assert_eq!(s.cached_preparations(), 2, "capacity must bound the cache");
        assert!(run(&mut s, 1), "recently-used entry must survive eviction");
        assert!(!run(&mut s, 2), "evicted entry must rebuild");
        // shrinking the cap evicts immediately
        s.set_cache_capacity(1);
        assert_eq!(s.cached_preparations(), 1);
        assert!(run(&mut s, 2), "the single most-recent entry survives");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cache_capacity_rejected() {
        Session::new().set_cache_capacity(0);
    }

    #[test]
    fn continuous_query_emits_on_schedule() {
        let mut s = fast_session();
        let out = match s
            .execute("SELECT TOP 3 FRAMES FROM Archie EVERY 400 FRAMES EMIT WITH SEED 3")
            .unwrap()
        {
            Output::Stream(o) => o,
            other => panic!("{other:?}"),
        };
        assert!(!out.answers.is_empty(), "stream must emit at least once");
        let stride = out.answers[0].at_frame;
        for (i, a) in out.answers.iter().enumerate() {
            assert_eq!(a.at_frame, (i + 1) * stride, "emits land on the stride");
            assert!(a.converged, "unbounded budget must converge");
            assert!(a.confidence >= 0.9);
            assert!(a.topk.len() <= 3);
        }
        // rows are rank-ordered (bucket desc, arrival-id asc) and map to
        // real video frames
        let last = out.answers.last().unwrap();
        for w in last.topk.windows(2) {
            assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for &(id, _) in &last.topk {
            assert!(out.video_frame(id) < out.stats.n_frames);
        }
        let text = out.render();
        assert!(text.contains("continuous top-3"), "{text}");
        assert!(text.contains("emit @"), "{text}");
        // streaming reuses the same Phase-1 cache slot as batch queries
        assert_eq!(s.cached_preparations(), 1);
    }

    #[test]
    fn stream_session_yields_per_emit_answers() {
        let mut s = fast_session();
        let mut stream = s
            .stream(
                "SELECT TOP 2 FRAMES FROM Archie EVERY 300 FRAMES EMIT \
                 WITH SEED 3, WINDOW 600, BUDGET 10",
            )
            .unwrap();
        let n = stream.n_arrivals();
        assert!(n > 0);
        let mut emits = 0usize;
        let mut last_at = 0usize;
        while let Some(a) = stream.next_emit() {
            assert!(a.at_frame > last_at, "emits advance monotonically");
            assert!(a.cleaned <= 10, "per-emit budget respected");
            assert_eq!(a.window_start, a.at_frame.saturating_sub(600));
            last_at = a.at_frame;
            emits += 1;
        }
        assert_eq!(emits, n / 300.min(n).max(1));
        let out = stream.finish().unwrap();
        assert_eq!(out.answers.len(), emits);
        assert_eq!(out.stats.iterations, Some(emits));
    }

    #[test]
    fn stream_requires_every_clause() {
        let mut s = fast_session();
        let e = s.stream("SELECT TOP 2 FRAMES FROM Archie").unwrap_err();
        assert!(
            e.message().contains("EVERY <n> FRAMES EMIT"),
            "{}",
            e.message()
        );
        let e = s.stream("SHOW DATASETS").unwrap_err();
        assert!(e.message().contains("SELECT TOP"), "{}", e.message());
    }

    #[test]
    fn cheap_engines_are_fast_but_inaccurate() {
        let mut s = fast_session();
        let out = match s
            .execute("SELECT TOP 10 FRAMES FROM Archie USING tinyyolo WITH SEED 3")
            .unwrap()
        {
            Output::Rows(o) => o,
            other => panic!("{other:?}"),
        };
        assert!(
            out.stats.speedup > 2.0,
            "cheap scan must beat the oracle scan"
        );
        assert!(
            out.stats.quality.unwrap().precision < 1.0,
            "and pay for it in precision"
        );
        assert_eq!(s.cached_preparations(), 0, "cheap scans need no Phase 1");
    }
}
