//! Property tests for the serve wire protocol (`everest_evql::wire`):
//! request/response round-trips, framing across arbitrary chunk splits,
//! and no-panic + bounded-allocation guarantees on adversarial bytes.

use everest_evql::wire::{frame, FrameDecoder, Request, Response, WireError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Mix of EVQL-looking text and arbitrary unicode, including empties.
    prop::sample::select(vec![
        String::new(),
        "SELECT TOP 5 FRAMES FROM Archie".to_string(),
        "SHOW METRICS".to_string(),
        "ü†¶ — caret ^ here".to_string(),
        "multi\nline\ttext".to_string(),
        "\u{0}embedded nul".to_string(),
    ])
}

fn arb_nonce() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..64)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (any::<u64>(), arb_text(), arb_nonce(), 0u8..3).prop_map(|(id, text, nonce, tag)| match tag {
        0 => Request::Query { id, text },
        1 => Request::Admin { id, command: text },
        _ => Request::Ping { id, nonce },
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (any::<u64>(), arb_text(), arb_nonce(), 0u8..4).prop_map(|(id, text, nonce, tag)| match tag {
        0 => Response::Answer {
            id,
            canonical: nonce,
            rendered: text,
        },
        1 => Response::Message { id, text },
        2 => Response::Error { id, text },
        _ => Response::Pong { id, nonce },
    })
}

proptest! {
    /// Encode → decode is the identity for every request value.
    #[test]
    fn request_encode_decode_identity(req in arb_request()) {
        let bytes = req.encode();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    /// Encode → decode is the identity for every response value.
    #[test]
    fn response_encode_decode_identity(resp in arb_response()) {
        let bytes = resp.encode();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    /// A stream of valid frames reassembles identically no matter how
    /// the transport fragments it.
    #[test]
    fn decoder_is_chunking_invariant(
        reqs in proptest::collection::vec(arb_request(), 1..6),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&frame(&r.encode()));
        }
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(payload) = dec.next_frame().unwrap() {
                decoded.push(Request::decode(&payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, reqs);
        prop_assert!(!dec.has_partial());
    }

    /// Arbitrary length prefixes: anything above the guard is rejected
    /// *before* payload bytes are buffered, zero is rejected, and the
    /// decoder never allocates more than the announced (guarded) length.
    #[test]
    fn adversarial_length_prefixes_are_bounded(len in any::<u32>()) {
        let max = 4096u32;
        let mut dec = FrameDecoder::new(max);
        dec.push(&len.to_be_bytes());
        match dec.next_frame() {
            Err(WireError::FrameTooLarge { len: l, max: m }) => {
                prop_assert!(len > max);
                prop_assert_eq!(l, len);
                prop_assert_eq!(m, max);
            }
            Err(WireError::EmptyFrame) => prop_assert_eq!(len, 0),
            Ok(None) => prop_assert!(len >= 1 && len <= max),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// Mutating a single byte of a valid encoding never panics the
    /// decoder: it yields either a (different) valid value or a typed
    /// error.
    #[test]
    fn single_byte_mutations_never_panic(
        req in arb_request(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = req.encode();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        if let Ok(other) = Request::decode(&bytes) {
            prop_assert!(other != req || pos >= bytes.len());
        }
    }

    /// Truncating a valid encoding at any point yields a typed error
    /// (or, for cut = 0, an empty-payload error), never a panic.
    #[test]
    fn truncations_yield_typed_errors(resp in arb_response(), cut_frac in 0.0f64..1.0) {
        let bytes = resp.encode();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        match Response::decode(&bytes[..cut]) {
            Err(WireError::Truncated(_)) | Err(WireError::BadTag(_)) => {}
            // a cut can also land exactly after a valid shorter field
            // layout; the only hard requirement is a typed result
            Ok(_) | Err(_) => {}
        }
    }

    /// Random garbage payloads decode to typed errors or valid values —
    /// never panics, never unbounded allocation (payload length bounds
    /// every field).
    #[test]
    fn garbage_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

#[test]
fn decoder_survives_interleaved_garbage_after_error() {
    // After a guard violation the decoder pins the stream dead: pushing
    // more (even valid) frames keeps returning the original error, which
    // is what lets the daemon close the connection deterministically.
    let mut dec = FrameDecoder::new(128);
    dec.push(&1_000_000u32.to_be_bytes());
    assert!(matches!(
        dec.next_frame(),
        Err(WireError::FrameTooLarge { .. })
    ));
    dec.push(&frame(
        &Request::Ping {
            id: 1,
            nonce: vec![],
        }
        .encode(),
    ));
    assert!(matches!(
        dec.next_frame(),
        Err(WireError::FrameTooLarge { .. })
    ));
}
