//! A small blocking client for the daemon's wire protocol — used by the
//! load generator, the e2e harness, and anything scripting the daemon.

use everest_evql::wire::{self, Request, Response};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection to the daemon: sequential request/response exchanges
/// with auto-assigned request ids.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: wire::max_frame(),
            next_id: 1,
        })
    }

    /// Caps how large a response frame this client will buffer.
    /// (Responses carry full renderings, so this defaults to the shared
    /// [`wire::max_frame`] guard and can be raised independently of the
    /// daemon's ingress cap.)
    pub fn set_max_frame(&mut self, max: u32) {
        self.max_frame = max;
    }

    /// Bounds how long [`Client::read_response`] blocks. `None` waits
    /// forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends a request without waiting for its response. Returns the
    /// request id the daemon will echo.
    pub fn send(&mut self, mut build: impl FnMut(u64) -> Request) -> io::Result<u64> {
        let id = self.take_id();
        let payload = build(id).encode();
        let max = (payload.len() as u32).max(self.max_frame);
        wire::write_frame(&mut self.stream, &payload, max)?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Reads the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = wire::read_frame(&mut self.stream, self.max_frame)?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Executes one EVQL statement and returns the daemon's response.
    pub fn query(&mut self, text: &str) -> io::Result<Response> {
        self.send(|id| Request::Query {
            id,
            text: text.to_string(),
        })?;
        self.read_response()
    }

    /// Runs one admin command (`SHOW SESSIONS`, `RELOAD`, …).
    pub fn admin(&mut self, command: &str) -> io::Result<Response> {
        self.send(|id| Request::Admin {
            id,
            command: command.to_string(),
        })?;
        self.read_response()
    }

    /// Ping/pong with an arbitrary nonce; returns the echoed nonce.
    pub fn ping(&mut self, nonce: Vec<u8>) -> io::Result<Vec<u8>> {
        let sent = self.send(|id| Request::Ping {
            id,
            nonce: nonce.clone(),
        })?;
        match self.read_response()? {
            Response::Pong { id, nonce } if id == sent => Ok(nonce),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong for request {sent}, got {other:?}"),
            )),
        }
    }

    /// Writes raw bytes straight onto the socket — for fuzzing the
    /// daemon's frame handling with adversarial input.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Shuts down the write half, signalling EOF to the daemon while
    /// responses can still be read.
    pub fn finish_writing(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
