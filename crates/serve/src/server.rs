//! The daemon: accept loop, bounded worker pool, session-per-connection
//! protocol handling, admin commands, graceful shutdown.
//!
//! Threading shape (pg_doorman-style pooler, hand-rolled on std):
//!
//! ```text
//! accept thread ──► bounded channel ──► worker 0..N
//!                                        └─ one connection at a time,
//!                                           one EVQL Session each,
//!                                           all over one SharedCache
//! ```
//!
//! Shutdown contract: once the flag is set the accept loop stops handing
//! out connections, and every worker finishes the frames it has already
//! decoded — a query whose request frame was fully received ("accepted")
//! is always executed and answered before its connection closes. Bytes
//! still in flight (partial frames) get [`crate::ServeConfig::drain_grace`]
//! to complete, then the connection is dropped. The final
//! [`ShutdownReport`] carries the accepted/answered totals so harnesses
//! can assert nothing was lost.

use crate::config::ServeConfig;
use crate::metrics::Metrics;
use crate::registry::SessionRegistry;
use everest_core::prelude::CancelToken;
use everest_evql::wire::{self, FrameDecoder, Request, Response, WireError};
use everest_evql::{EvqlError, ExecStats, Output, Session, SharedCache};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// State shared by the accept loop, every worker, and every handle.
struct Shared {
    cfg: ServeConfig,
    cache: SharedCache,
    metrics: Arc<Metrics>,
    registry: Arc<SessionRegistry>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Queries currently executing across all workers; the admission
    /// gate compares this against `cfg.max_inflight_queries`.
    inflight: AtomicUsize,
}

/// What [`Server::run`] returns after a graceful shutdown.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Query frames fully decoded over the daemon's lifetime.
    pub queries_accepted: u64,
    /// Query responses produced (answer or query-level error). The
    /// graceful-shutdown guarantee is `queries_answered + queries_shed
    /// == queries_accepted`: no accepted query is ever silently dropped.
    pub queries_answered: u64,
    /// Queries refused at admission with a typed `Overloaded` response
    /// (the daemon was at `max_inflight_queries`).
    pub queries_shed: u64,
    /// Connections served end to end.
    pub connections: u64,
    /// Sessions still registered when the last worker exited (always 0
    /// after a clean drain).
    pub sessions_left: usize,
}

impl ShutdownReport {
    /// True when every accepted query was answered or explicitly shed,
    /// and every session drained.
    pub fn clean(&self) -> bool {
        self.queries_accepted == self.queries_answered + self.queries_shed
            && self.sessions_left == 0
    }
}

/// A cloneable remote control for a running [`Server`]: request
/// shutdown, read metrics, inspect the registry and cache.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The daemon's bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The daemon-wide counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The live-session table.
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// The shared prepared-video cache.
    pub fn cache(&self) -> SharedCache {
        self.shared.cache.clone()
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: stops accepting, drains in-flight
    /// queries, then [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }
}

fn request_shutdown(shared: &Shared) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        // The accept loop may be parked in `accept()`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
    }
}

/// The EVQL daemon. [`Server::bind`] prepares it (including catalog
/// warmup), [`Server::run`] serves until a `SHUTDOWN` admin command or
/// [`ServerHandle::shutdown`] drains it.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
}

impl Server {
    /// Binds the listener and runs the warmup statements (each one
    /// populates the shared prepared-video cache before the first client
    /// connects). Fails if a warmup statement is invalid EVQL.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = SharedCache::with_capacity(cfg.cache_capacity.max(1));
        if !cfg.warmup.is_empty() {
            let mut warm = Session::with_shared_cache(cfg.settings.clone(), cache.clone());
            for stmt in &cfg.warmup {
                warm.execute(stmt).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("warmup statement failed: {}", e.message()),
                    )
                })?;
            }
        }
        Ok(Server {
            shared: Arc::new(Shared {
                cfg,
                cache,
                metrics: Arc::new(Metrics::new()),
                registry: Arc::new(SessionRegistry::new()),
                shutdown: AtomicBool::new(false),
                addr,
                inflight: AtomicUsize::new(0),
            }),
            listener,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Binds and serves on a background thread; returns the handle and
    /// the join handle that yields the [`ShutdownReport`].
    pub fn spawn(cfg: ServeConfig) -> io::Result<(ServerHandle, JoinHandle<ShutdownReport>)> {
        let server = Server::bind(cfg)?;
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        Ok((handle, join))
    }

    /// Serves until shutdown, then drains and reports.
    pub fn run(self) -> ShutdownReport {
        let shared = self.shared;
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(shared.cfg.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(shared, rx))
            })
            .collect();

        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        // Either the wake-up connection or a client that
                        // raced shutdown; both are turned away.
                        drop(stream);
                        break;
                    }
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Transient accept failure; keep serving.
                }
            }
        }

        drop(tx); // Workers drain the queue, then their recv() errors out.
        for w in workers {
            let _ = w.join();
        }

        let ld = Ordering::Relaxed;
        ShutdownReport {
            queries_accepted: shared.metrics.queries_accepted.load(ld),
            queries_answered: shared.metrics.queries_answered.load(ld),
            queries_shed: shared.metrics.shed_queries.load(ld),
            connections: shared.metrics.connections_closed.load(ld),
            sessions_left: shared.registry.len(),
        }
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<crossbeam::channel::Receiver<TcpStream>>>) {
    loop {
        // Holding the lock across the blocking recv is the classic
        // shared-receiver handoff: exactly one idle worker waits on the
        // channel, the rest queue on the mutex.
        let stream = {
            let guard = rx.lock().unwrap();
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(&shared, stream),
            Err(_) => return, // Accept loop gone and queue drained.
        }
    }
}

/// Why the per-connection loop ended; decides close-time accounting.
enum CloseReason {
    /// Orderly end: EOF with no partial frame, or a clean drain.
    Clean,
    /// Peer vanished (EOF mid-frame, reset, write failure).
    Disconnect,
    /// A framing violation pinned the stream dead.
    Protocol,
    /// Shutdown drain grace expired with a partial frame outstanding.
    DrainExpired,
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared
        .metrics
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    let peer = stream
        .peer_addr()
        .unwrap_or_else(|_| "0.0.0.0:0".parse().unwrap());
    let session_id = shared.registry.register(peer);

    let reason = serve_connection(shared, stream, session_id);

    match reason {
        CloseReason::Clean => {}
        CloseReason::Disconnect => {
            shared
                .metrics
                .client_disconnects
                .fetch_add(1, Ordering::Relaxed);
        }
        CloseReason::Protocol | CloseReason::DrainExpired => {}
    }
    shared.registry.drop_session(session_id);
    shared
        .metrics
        .connections_closed
        .fetch_add(1, Ordering::Relaxed);
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, session_id: u64) -> CloseReason {
    let cfg = &shared.cfg;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.read_poll)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return CloseReason::Disconnect;
    }

    let mut session = Session::with_shared_cache(cfg.settings.clone(), shared.cache.clone());
    let mut decoder = FrameDecoder::new(cfg.max_frame);
    let mut buf = [0u8; 16 * 1024];
    let mut drain_deadline: Option<Instant> = None;
    let mut queries_served = 0u64;
    // lint:allow(det-wallclock): keep-alive idle clock; connection
    // lifecycle only, never answer content.
    let mut last_frame = Instant::now();

    loop {
        // Serve every complete frame before reading more: under shutdown
        // these are the "accepted" requests that must still be answered.
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    // lint:allow(det-wallclock): keep-alive idle clock.
                    last_frame = Instant::now();
                    if let Err(reason) = serve_frame(
                        shared,
                        &mut stream,
                        &mut session,
                        session_id,
                        &payload,
                        &mut queries_served,
                    ) {
                        return reason;
                    }
                    // Keep-alive recycling: the limit-hitting query is
                    // fully answered, then the connection closes.
                    if let Some(max) = cfg.max_queries_per_connection {
                        if queries_served >= max {
                            return CloseReason::Clean;
                        }
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is unrecoverable (the decoder pins the
                    // stream dead); tell the peer why, then close. The
                    // daemon itself stays up.
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    if matches!(err, WireError::FrameTooLarge { .. }) {
                        shared
                            .metrics
                            .frames_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = write_response(
                        shared,
                        &mut stream,
                        &Response::Error {
                            id: 0,
                            text: err.to_string(),
                        },
                    );
                    return CloseReason::Protocol;
                }
            }
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            if !decoder.has_partial() {
                return CloseReason::Clean;
            }
            // lint:allow(det-wallclock): shutdown drain-grace timer; a
            // peer holding half a frame may finish it, but not forever.
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + cfg.drain_grace);
            // lint:allow(det-wallclock): drain-grace deadline check.
            if Instant::now() >= deadline {
                return CloseReason::DrainExpired;
            }
        }

        // Keep-alive idle limit: a connection that has not completed a
        // frame for this long is closed (a partial frame still counts as
        // activity in progress, so it is exempt until it completes or the
        // peer stalls past the limit anyway).
        if let Some(idle) = cfg.idle_timeout {
            // lint:allow(det-wallclock): keep-alive idle check.
            if !decoder.has_partial() && last_frame.elapsed() >= idle {
                return CloseReason::Clean;
            }
        }

        match stream.read(&mut buf) {
            Ok(0) => {
                return if decoder.has_partial() {
                    CloseReason::Disconnect
                } else {
                    CloseReason::Clean
                };
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e) => match e.kind() {
                // Poll tick: no data within read_poll; loop re-checks the
                // shutdown flag.
                io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted => {}
                _ => return CloseReason::Disconnect,
            },
        }
    }
}

/// Serves one decoded frame. `Err` means the connection must close.
/// `queries_served` counts query frames for the keep-alive limit.
fn serve_frame(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut Session,
    session_id: u64,
    payload: &[u8],
    queries_served: &mut u64,
) -> Result<(), CloseReason> {
    shared
        .metrics
        .bytes_in
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    let request = match Request::decode(payload) {
        Ok(req) => req,
        Err(err) => {
            // The frame itself was well-formed, so the stream is still in
            // sync: report the bad payload and keep the connection.
            shared
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return write_response(
                shared,
                stream,
                &Response::Error {
                    id: 0,
                    text: err.to_string(),
                },
            );
        }
    };

    match request {
        Request::Query { id, text } => {
            *queries_served += 1;
            serve_query(shared, stream, session, session_id, id, &text)
        }
        Request::Admin { id, command } => serve_admin(shared, stream, id, &command),
        Request::Ping { id, nonce } => {
            shared.metrics.pings.fetch_add(1, Ordering::Relaxed);
            write_response(shared, stream, &Response::Pong { id, nonce })
        }
    }
}

fn serve_query(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut Session,
    session_id: u64,
    id: u64,
    text: &str,
) -> Result<(), CloseReason> {
    shared
        .metrics
        .queries_accepted
        .fetch_add(1, Ordering::Relaxed);

    // Admission gate: shed rather than queue once `max_inflight_queries`
    // queries are already executing. The shed query is answered with a
    // typed Overloaded frame and counts toward neither `answered` nor
    // `failed` — the drain invariant is accepted == answered + shed.
    let cur = shared.inflight.fetch_add(1, Ordering::SeqCst);
    if let Some(max) = shared.cfg.max_inflight_queries {
        if cur >= max {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.metrics.shed_queries.fetch_add(1, Ordering::Relaxed);
            return write_response(
                shared,
                stream,
                &Response::Overloaded {
                    id,
                    inflight: cur as u64,
                    text: format!(
                        "query shed: {cur} queries already in flight \
                         (max_inflight_queries = {max}); retry with backoff"
                    ),
                },
            );
        }
    }

    shared.registry.begin(session_id);
    // lint:allow(det-wallclock): per-query latency sample for the
    // histogram; rendered only below WALL_CLOCK_MARKER.
    let started = Instant::now();

    // Disconnect cancellation: while the query executes, a watcher peeks
    // the socket (without consuming pipelined bytes). EOF means the
    // client is gone — the cleaning loop observes the token at its next
    // batch boundary and returns a degraded `cancelled` answer instead
    // of burning oracle budget for nobody.
    let token = CancelToken::new();
    session.set_cancel_token(Some(token.clone()));
    let done = Arc::new(AtomicBool::new(false));
    if let Ok(peer) = stream.try_clone() {
        let token = token.clone();
        let done = Arc::clone(&done);
        let tick = shared.cfg.read_poll;
        // Detached on purpose: joining would add up to one poll tick of
        // latency per query. The thread exits within a tick of `done`.
        thread::spawn(move || {
            let mut probe = [0u8; 1];
            while !done.load(Ordering::SeqCst) {
                match peer.peek(&mut probe) {
                    Ok(0) => {
                        token.cancel();
                        break;
                    }
                    // Pipelined bytes waiting: the peer is alive.
                    Ok(_) => thread::sleep(tick),
                    Err(e) => match e.kind() {
                        // The shared SO_RCVTIMEO makes peek a poll tick.
                        io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted => {}
                        _ => {
                            token.cancel();
                            break;
                        }
                    },
                }
            }
        });
    }

    let response = match session.execute(text) {
        Ok(output) => {
            if let Some(stats) = stats_of(&output) {
                record_query_stats(&shared.metrics, stats);
            }
            Response::Answer {
                id,
                canonical: wire::canonical_output(&output),
                rendered: render_output(&output),
            }
        }
        Err(err) => {
            shared
                .metrics
                .queries_failed
                .fetch_add(1, Ordering::Relaxed);
            Response::Error {
                id,
                text: render_error(&err, text),
            }
        }
    };
    done.store(true, Ordering::SeqCst);
    session.set_cancel_token(None);
    shared.inflight.fetch_sub(1, Ordering::SeqCst);

    // The query is answered the moment a response exists — delivery
    // failure (peer gone, write timeout) is accounted separately and
    // does not break the accepted == answered drain invariant.
    let write_result = write_response(shared, stream, &response);
    shared
        .metrics
        .queries_answered
        .fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .latency
        .record_us(started.elapsed().as_micros() as u64);
    shared
        .registry
        .finish(session_id, shared.shutdown.load(Ordering::SeqCst));
    write_result
}

fn serve_admin(
    shared: &Shared,
    stream: &mut TcpStream,
    id: u64,
    command: &str,
) -> Result<(), CloseReason> {
    shared
        .metrics
        .admin_commands
        .fetch_add(1, Ordering::Relaxed);
    let normalized = command.trim().trim_end_matches(';').trim().to_uppercase();
    let response = match normalized.as_str() {
        "SHOW SESSIONS" => {
            let cfg = &shared.cfg;
            let mut text = shared.registry.render();
            text.push_str(&format!(
                "keep-alive: max_queries_per_connection={}, idle_timeout={}\n",
                cfg.max_queries_per_connection
                    .map_or("unlimited".into(), |n| n.to_string()),
                cfg.idle_timeout
                    .map_or("unlimited".into(), |d| format!("{}ms", d.as_millis())),
            ));
            text.push_str(&format!(
                "admission: max_inflight_queries={}, inflight={}\n",
                cfg.max_inflight_queries
                    .map_or("unlimited".into(), |n| n.to_string()),
                shared.inflight.load(Ordering::SeqCst),
            ));
            Response::Message { id, text }
        }
        "SHOW CACHES" => Response::Message {
            id,
            text: shared.cache.render(),
        },
        "SHOW METRICS" => Response::Message {
            id,
            text: shared.metrics.render(),
        },
        "RELOAD" => {
            shared.cache.clear();
            shared.metrics.reloads.fetch_add(1, Ordering::Relaxed);
            Response::Message {
                id,
                text: "reloaded: prepared-video cache dropped; active sessions keep \
                       their in-flight preparations until they finish"
                    .into(),
            }
        }
        "SHUTDOWN" => {
            request_shutdown(shared);
            Response::Message {
                id,
                text: "shutting down: draining in-flight queries".into(),
            }
        }
        _ => Response::Error {
            id,
            text: format!(
                "unknown admin command {command:?} (try SHOW SESSIONS, SHOW CACHES, \
                 SHOW METRICS, RELOAD, SHUTDOWN)"
            ),
        },
    };
    write_response(shared, stream, &response)
}

/// Writes one response frame, classifying failures: a peer that will not
/// read within the write timeout counts as a write timeout, anything
/// else as a disconnect.
fn write_response(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
) -> Result<(), CloseReason> {
    let payload = response.encode();
    // Responses may exceed the request-side guard (a rendered answer can
    // outgrow it); the frame cap only protects the daemon's ingress, so
    // egress uses the payload's own size.
    let max = (payload.len() as u32).max(shared.cfg.max_frame);
    match wire::write_frame(stream, &payload, max).and_then(|()| stream.flush()) {
        Ok(()) => {
            shared
                .metrics
                .bytes_out
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                shared
                    .metrics
                    .write_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                // Already accounted as a write timeout; close without
                // also counting a disconnect.
                Err(CloseReason::Clean)
            }
            _ => Err(CloseReason::Disconnect),
        },
    }
}

fn stats_of(output: &Output) -> Option<&ExecStats> {
    match output {
        Output::Rows(q) => Some(&q.stats),
        Output::Skyline(s) => Some(&s.stats),
        Output::Stream(s) => Some(&s.stats),
        Output::Message(_) => None,
    }
}

/// Folds one answered query's execution stats into the daemon counters.
fn record_query_stats(metrics: &Metrics, stats: &ExecStats) {
    if let Some(cleaned) = stats.cleaned {
        metrics
            .cleaned_frames
            .fetch_add(cleaned as u64, Ordering::Relaxed);
    }
    if stats.termination.is_some_and(|t| t.is_degraded()) {
        metrics.degraded_answers.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(retries) = stats.oracle_retries {
        metrics.oracle_retries.fetch_add(retries, Ordering::Relaxed);
    }
    if let Some(trips) = stats.breaker_trips {
        metrics.breaker_trips.fetch_add(trips, Ordering::Relaxed);
    }
}

fn render_output(output: &Output) -> String {
    match output {
        Output::Rows(q) => q.render(),
        Output::Skyline(s) => s.render(),
        Output::Stream(s) => s.render(),
        Output::Message(m) => m.clone(),
    }
}

fn render_error(err: &EvqlError, src: &str) -> String {
    err.render(src)
}
