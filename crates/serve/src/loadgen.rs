//! A deterministic concurrent load generator for the daemon.
//!
//! `run_loadgen` drives N client sessions in parallel, each executing a
//! seeded pseudo-random sequence drawn from a query mix. Everything that
//! determines *what* is asked is a pure function of the seed, so two
//! runs against fresh daemons ask exactly the same queries — and because
//! answers are canonical-encoded, the combined answer digest must come
//! out identical too. Wall-clock figures (qps, quantiles) are reported
//! but excluded from the digest.

use crate::client::Client;
use crate::metrics::LatencyHistogram;
use everest_evql::wire::Response;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What to throw at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Queries each session executes.
    pub queries_per_session: usize,
    /// Seed for the per-session query sequences.
    pub seed: u64,
    /// EVQL statements to draw from; see [`default_mix`].
    pub mix: Vec<String>,
}

impl LoadgenConfig {
    /// `sessions` × `queries_per_session` against `addr` with the
    /// default mix.
    pub fn new(addr: SocketAddr, sessions: usize, queries_per_session: usize, seed: u64) -> Self {
        LoadgenConfig {
            addr,
            sessions,
            queries_per_session,
            seed,
            mix: default_mix(),
        }
    }
}

/// The default query mix: scan-engine Top-K over the paper's counting
/// datasets (frames and windows). Scan needs no Phase-1 training, so a
/// load test exercises the full wire/session/cache path without
/// multi-second CMDN fits per distinct query shape.
pub fn default_mix() -> Vec<String> {
    [
        "SELECT TOP 5 FRAMES FROM Archie USING scan",
        "SELECT TOP 10 FRAMES FROM Grand-Canal SCORE count(boat) USING scan",
        "SELECT TOP 3 FRAMES FROM Taipei-bus USING scan",
        "SELECT TOP 5 FRAMES FROM Irish-Center USING scan",
        "SELECT TOP 2 WINDOWS OF 30 FRAMES FROM Archie USING scan",
    ]
    .map(String::from)
    .to_vec()
}

/// A fault-injection mix (`--flaky-seed`): Everest-engine queries whose
/// Phase-2 oracle is wrapped in the seeded `everest_models::FlakyOracle`
/// via `WITH FLAKY`, under tight call caps and deadlines so some answers
/// come back degraded. Every knob is in the query text, so the run stays
/// a pure function of the seeds and the combined digest stays comparable
/// across runs.
pub fn flaky_mix(seed: u64) -> Vec<String> {
    vec![
        format!(
            "SELECT TOP 5 FRAMES FROM Archie \
             WITHIN 60 ORACLE CALLS WITH SEED 11, FLAKY {seed}"
        ),
        format!(
            "SELECT TOP 3 FRAMES FROM Taipei-bus \
             WITH SEED 12, DEADLINE 4.0, FLAKY {}",
            seed.wrapping_add(1)
        ),
        format!(
            "SELECT TOP 4 FRAMES FROM Irish-Center \
             WITHIN 40 ORACLE CALLS WITH SEED 13, FLAKY {}",
            seed.wrapping_add(2)
        ),
    ]
}

/// What a load run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions driven.
    pub sessions: usize,
    /// Queries that completed with a response (including shed ones —
    /// an `Overloaded` frame is a response).
    pub queries_total: u64,
    /// Responses that were errors (daemon- or query-level).
    pub errors: u64,
    /// Responses that were typed `Overloaded` frames: the daemon shed
    /// the query at admission. Always 0 unless the daemon runs with
    /// `max_inflight_queries` set and the load exceeds it. Shed answers
    /// carry no canonical bytes, so a run with `shed > 0` has a
    /// load-dependent digest.
    pub shed: u64,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// `queries_total / wall`.
    pub qps: f64,
    /// Median round-trip latency, µs (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, µs (bucket upper bound).
    pub p99_us: u64,
    /// Order-independent digest over every answer's canonical bytes.
    /// Identical seeds against equivalent daemons must produce identical
    /// digests.
    pub digest: u64,
}

impl LoadgenReport {
    /// One-line-per-field text report.
    pub fn render(&self) -> String {
        format!(
            "sessions={}\nqueries={}\nerrors={}\nshed={}\nwall_ms={}\nqps={:.1}\n\
             p50_us={}\np99_us={}\ndigest={:016x}\n",
            self.sessions,
            self.queries_total,
            self.errors,
            self.shed,
            self.wall.as_millis(),
            self.qps,
            self.p50_us,
            self.p99_us,
            self.digest,
        )
    }
}

/// splitmix64: tiny, seedable, identical everywhere — query selection
/// must not depend on a library RNG's evolution.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64 over a byte slice, continuing from `hash`.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Drives the configured load and reports. Each session's digest chains
/// its answers in execution order; session digests combine with a
/// wrapping sum so the total does not depend on thread finish order.
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    if cfg.mix.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "loadgen mix is empty",
        ));
    }
    let latency = Arc::new(LatencyHistogram::new());
    // lint:allow(det-wallclock): load-test wall timing; reported outside
    // the deterministic digest.
    let started = Instant::now();

    let mut threads = Vec::with_capacity(cfg.sessions);
    for session_idx in 0..cfg.sessions {
        let cfg = cfg.clone();
        let latency = Arc::clone(&latency);
        threads.push(thread::spawn(
            move || -> io::Result<(u64, u64, u64, u64)> {
                let mut client = Client::connect(cfg.addr)?;
                let mut rng = cfg.seed ^ (session_idx as u64).wrapping_mul(0xa076_1d64_78bd_642f);
                let mut digest = FNV_OFFSET;
                let mut completed = 0u64;
                let mut errors = 0u64;
                let mut shed = 0u64;
                for _ in 0..cfg.queries_per_session {
                    let pick = (splitmix64(&mut rng) % cfg.mix.len() as u64) as usize;
                    // lint:allow(det-wallclock): per-query round-trip sample.
                    let t0 = Instant::now();
                    let response = client.query(&cfg.mix[pick])?;
                    latency.record_us(t0.elapsed().as_micros() as u64);
                    completed += 1;
                    match response {
                        Response::Answer { canonical, .. } => {
                            digest = fnv1a(digest, &canonical);
                        }
                        Response::Message { text, .. } => {
                            digest = fnv1a(digest, text.as_bytes());
                        }
                        Response::Error { .. } => errors += 1,
                        // Shed at admission: counted, not digested (which
                        // query gets shed is timing-dependent).
                        Response::Overloaded { .. } => shed += 1,
                        Response::Pong { .. } => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "pong in response to a query",
                            ));
                        }
                    }
                }
                Ok((digest, completed, errors, shed))
            },
        ));
    }

    let mut digest = 0u64;
    let mut queries_total = 0u64;
    let mut errors = 0u64;
    let mut shed = 0u64;
    for t in threads {
        let (d, q, e, s) = t
            .join()
            .map_err(|_| io::Error::other("loadgen session panicked"))??;
        digest = digest.wrapping_add(d);
        queries_total += q;
        errors += e;
        shed += s;
    }

    let wall = started.elapsed();
    Ok(LoadgenReport {
        sessions: cfg.sessions,
        queries_total,
        errors,
        shed,
        wall,
        qps: queries_total as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: latency.quantile_us(0.50),
        p99_us: latency.quantile_us(0.99),
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_and_fnv_are_stable() {
        let mut s = 42u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        let mut s2 = 42u64;
        assert_eq!(splitmix64(&mut s2), a);
        assert_eq!(fnv1a(FNV_OFFSET, b"everest"), fnv1a(FNV_OFFSET, b"everest"));
        assert_ne!(fnv1a(FNV_OFFSET, b"everest"), fnv1a(FNV_OFFSET, b"everesT"));
    }

    #[test]
    fn empty_mix_is_rejected() {
        let mut cfg = LoadgenConfig::new("127.0.0.1:1".parse().unwrap(), 1, 1, 0);
        cfg.mix.clear();
        assert!(run_loadgen(&cfg).is_err());
    }
}
