//! The `everest-serve` daemon binary.
//!
//! ```text
//! everest-serve [--addr HOST:PORT] [--workers N] [--scale D]
//!               [--cache-capacity N] [--seed S] [--warmup "EVQL"]...
//! ```
//!
//! Binds, runs warmup statements to pre-populate the prepared-video
//! cache, then serves until a `SHUTDOWN` admin command (or the process
//! is killed). Prints the shutdown report on a graceful exit.

use everest_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: everest-serve [--addr HOST:PORT] [--workers N] [--scale D]\n\
         \u{20}                    [--cache-capacity N] [--seed S] [--warmup \"EVQL\"]...\n\
         \n\
         \u{20} --addr            listen address (default 127.0.0.1:5433)\n\
         \u{20} --workers         worker threads / max concurrent sessions (default 8)\n\
         \u{20} --scale           catalog scale divisor for all sessions (default 8)\n\
         \u{20} --cache-capacity  shared prepared-video cache entries (default 8)\n\
         \u{20} --seed            default dataset build seed (default 0)\n\
         \u{20} --warmup          EVQL executed at boot; repeatable"
    );
    std::process::exit(2);
}

fn parse_args() -> ServeConfig {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => match value("--workers").parse() {
                Ok(n) if n >= 1 => cfg.workers = n,
                _ => usage(),
            },
            "--scale" => match value("--scale").parse() {
                Ok(n) if n >= 1 => cfg.settings.scale = n,
                _ => usage(),
            },
            "--cache-capacity" => match value("--cache-capacity").parse() {
                Ok(n) if n >= 1 => cfg.cache_capacity = n,
                _ => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => cfg.settings.seed = n,
                Err(_) => usage(),
            },
            "--warmup" => cfg.warmup.push(value("--warmup")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let workers = cfg.workers;
    let warmups = cfg.warmup.len();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("everest-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "everest-serve listening on {} ({} workers, {} warmup statement(s))",
        server.local_addr(),
        workers,
        warmups,
    );
    let report = server.run();
    println!(
        "everest-serve: drained — {} accepted / {} answered over {} connection(s){}",
        report.queries_accepted,
        report.queries_answered,
        report.connections,
        if report.clean() { "" } else { " [UNCLEAN]" },
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
