//! Daemon configuration.

use everest_evql::SessionSettings;
use std::time::Duration;

/// Everything the daemon needs to bind, pool, and serve.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 binds an ephemeral port (tests, benches).
    pub addr: String,
    /// Worker threads. Each worker serves one connection at a time
    /// (pooler "session mode"), so this bounds concurrent sessions;
    /// further accepted connections wait in the queue.
    pub workers: usize,
    /// Accepted-connection queue bound between the accept loop and the
    /// workers; a full queue backpressures `accept`.
    pub backlog: usize,
    /// Cap on the shared prepared-video cache (ready entries).
    pub cache_capacity: usize,
    /// Default EVQL settings for every new session (`SET` adjusts a
    /// single session afterwards).
    pub settings: SessionSettings,
    /// Max accepted frame size in bytes (see
    /// [`everest_evql::wire::max_frame`] for the env override).
    pub max_frame: u32,
    /// Read-poll tick: how often an idle connection checks the shutdown
    /// flag. Short enough that drain latency is invisible, long enough
    /// to keep idle connections cheap.
    pub read_poll: Duration,
    /// Per-write timeout. A client that stops reading while the daemon
    /// has a response in flight is disconnected once the socket has been
    /// unwritable this long.
    pub write_timeout: Duration,
    /// After shutdown, how long a connection with a *partial* frame may
    /// keep the daemon waiting for the rest of it before being dropped.
    /// Complete frames are always served regardless.
    pub drain_grace: Duration,
    /// Admission control: queries allowed to execute concurrently across
    /// all workers. A query arriving while this many are in flight is
    /// *shed* — answered immediately with the typed
    /// [`everest_evql::wire::Response::Overloaded`] frame instead of
    /// queueing behind work the daemon cannot keep up with. `None`
    /// disables shedding (the worker pool is then the only bound).
    pub max_inflight_queries: Option<usize>,
    /// Keep-alive bound: queries one connection may run before the
    /// daemon closes it (after answering the last one). `None` =
    /// unlimited. Recycling long-lived connections bounds per-session
    /// state and redistributes clients across workers.
    pub max_queries_per_connection: Option<u64>,
    /// Keep-alive bound: how long a connection may sit idle (no complete
    /// frame) before the daemon closes it. `None` = unlimited.
    pub idle_timeout: Option<Duration>,
    /// EVQL statements executed once at boot on a warmup session, before
    /// the listener starts serving — the "load a catalog of prepared
    /// videos" step (each statement populates the shared cache).
    pub warmup: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            backlog: 64,
            cache_capacity: 8,
            settings: SessionSettings::default(),
            max_frame: everest_evql::wire::max_frame(),
            read_poll: Duration::from_millis(20),
            write_timeout: Duration::from_secs(2),
            drain_grace: Duration::from_millis(500),
            max_inflight_queries: None,
            max_queries_per_connection: None,
            idle_timeout: None,
            warmup: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A config suited to tests: ephemeral port, floor-scaled datasets
    /// (every catalog video shrinks to its 2 000-frame floor), small
    /// pool.
    pub fn test_default() -> Self {
        let settings = SessionSettings {
            scale: 1_000,
            ..SessionSettings::default()
        };
        ServeConfig {
            workers: 4,
            settings,
            ..ServeConfig::default()
        }
    }
}
