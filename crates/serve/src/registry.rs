//! Live-session bookkeeping behind `SHOW SESSIONS`.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a registered session is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, waiting for a frame.
    Idle,
    /// Executing a query or admin command.
    Executing,
    /// Shutdown requested; the session finishes in-flight work and exits.
    Draining,
}

impl SessionState {
    fn display(self) -> &'static str {
        match self {
            SessionState::Idle => "idle",
            SessionState::Executing => "executing",
            SessionState::Draining => "draining",
        }
    }
}

#[derive(Debug)]
struct SessionInfo {
    peer: SocketAddr,
    state: SessionState,
    queries: u64,
}

/// The daemon's table of live sessions: registered on accept, updated as
/// requests start and finish, removed on close. Iteration is over a
/// `BTreeMap` keyed by session id, so `SHOW SESSIONS` renders in a
/// deterministic order.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    sessions: Mutex<BTreeMap<u64, SessionInfo>>,
}

impl SessionRegistry {
    /// An empty registry; ids start at 1.
    pub fn new() -> Self {
        SessionRegistry {
            next_id: AtomicU64::new(1),
            sessions: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers a new session and returns its id.
    pub fn register(&self, peer: SocketAddr) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().unwrap().insert(
            id,
            SessionInfo {
                peer,
                state: SessionState::Idle,
                queries: 0,
            },
        );
        id
    }

    /// Marks `id` as executing one more query.
    pub fn begin(&self, id: u64) {
        if let Some(s) = self.sessions.lock().unwrap().get_mut(&id) {
            s.state = SessionState::Executing;
            s.queries += 1;
        }
    }

    /// Marks `id` idle (or draining, once shutdown has begun).
    pub fn finish(&self, id: u64, draining: bool) {
        if let Some(s) = self.sessions.lock().unwrap().get_mut(&id) {
            s.state = if draining {
                SessionState::Draining
            } else {
                SessionState::Idle
            };
        }
    }

    /// Removes a closed session.
    pub fn drop_session(&self, id: u64) {
        self.sessions.lock().unwrap().remove(&id);
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `SHOW SESSIONS` table, one line per session in id order.
    pub fn render(&self) -> String {
        let sessions = self.sessions.lock().unwrap();
        let mut out = format!("{} session(s)\n", sessions.len());
        out.push_str("id     peer                   state      queries\n");
        for (id, s) in sessions.iter() {
            out.push_str(&format!(
                "{:<6} {:<22} {:<10} {}\n",
                id,
                s.peer.to_string(),
                s.state.display(),
                s.queries
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn lifecycle_is_reflected_in_render() {
        let reg = SessionRegistry::new();
        let a = reg.register(peer(5001));
        let b = reg.register(peer(5002));
        assert_eq!((a, b), (1, 2));
        reg.begin(a);
        let r = reg.render();
        assert!(r.starts_with("2 session(s)\n"), "{r}");
        assert!(r.contains("executing"), "{r}");
        reg.finish(a, false);
        reg.begin(b);
        reg.finish(b, true);
        let r = reg.render();
        assert!(r.contains("idle"), "{r}");
        assert!(r.contains("draining"), "{r}");
        reg.drop_session(a);
        reg.drop_session(b);
        assert!(reg.is_empty());
    }

    #[test]
    fn updates_to_dropped_sessions_are_ignored() {
        let reg = SessionRegistry::new();
        let id = reg.register(peer(5003));
        reg.drop_session(id);
        reg.begin(id); // must not panic or resurrect
        reg.finish(id, false);
        assert_eq!(reg.len(), 0);
    }
}
