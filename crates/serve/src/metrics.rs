//! Daemon-wide counters and the `SHOW METRICS` rendering.
//!
//! The render is split in two by [`WALL_CLOCK_MARKER`]: everything above
//! the marker is derived from integer counters whose final values are
//! deterministic for a given workload (single-flight cache, atomic
//! increments), everything below is wall-clock-derived (uptime, qps,
//! latency quantiles). The determinism harness compares only the prefix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Separates the deterministic counter section of a metrics render from
/// the wall-clock-derived section below it.
pub const WALL_CLOCK_MARKER: &str = "---- wall clock ----";

/// Power-of-two latency histogram in microseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 also takes
/// sub-microsecond samples); quantiles report the upper bound of the
/// bucket the quantile lands in, so two runs with the same per-sample
/// buckets report the same quantiles.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days: everything fits.

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; Self::BUCKETS],
            count: AtomicU64::new(0),
        }
    }

    /// Records one latency sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (us.max(1).ilog2() as usize).min(Self::BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// it falls in, in microseconds. Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << Self::BUCKETS
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Daemon-wide counters. All atomic, all monotonic (except none): a
/// `Metrics` is shared by every worker via `Arc`.
#[derive(Debug)]
pub struct Metrics {
    /// Connections handed to a worker.
    pub connections_accepted: AtomicU64,
    /// Connections whose handler returned (any reason).
    pub connections_closed: AtomicU64,
    /// Query frames fully decoded (the graceful-shutdown contract:
    /// every one of these gets an answer).
    pub queries_accepted: AtomicU64,
    /// Query responses (answer or query-level error) written back.
    pub queries_answered: AtomicU64,
    /// Queries that produced an EVQL error response.
    pub queries_failed: AtomicU64,
    /// Queries shed at admission (`Overloaded` response). The drain
    /// invariant becomes `accepted == answered + shed`.
    pub shed_queries: AtomicU64,
    /// Oracle calls retried after a fault, summed over fault-injected
    /// (`WITH FLAKY`) queries.
    pub oracle_retries: AtomicU64,
    /// Circuit-breaker trips across fault-injected queries.
    pub breaker_trips: AtomicU64,
    /// Answers returned with a degraded termination (budget, deadline,
    /// cancellation, oracle-down) instead of convergence.
    pub degraded_answers: AtomicU64,
    /// Admin frames served.
    pub admin_commands: AtomicU64,
    /// Ping frames echoed.
    pub pings: AtomicU64,
    /// Frames rejected by the codec (bad tag, truncation, UTF-8, …).
    pub protocol_errors: AtomicU64,
    /// Frames rejected by the max-frame guard specifically.
    pub frames_rejected: AtomicU64,
    /// Connections dropped because the peer vanished mid-exchange.
    pub client_disconnects: AtomicU64,
    /// Responses abandoned because the peer would not read in time.
    pub write_timeouts: AtomicU64,
    /// `RELOAD`s executed.
    pub reloads: AtomicU64,
    /// Total frames cleaned (oracle invocations) across all answered
    /// queries — the paper's clean-budget spend, aggregated.
    pub cleaned_frames: AtomicU64,
    /// Payload bytes received in valid frames.
    pub bytes_in: AtomicU64,
    /// Payload bytes written in response frames.
    pub bytes_out: AtomicU64,
    /// Query latency, decode-to-answer-written.
    pub latency: LatencyHistogram,
    started: Instant,
}

impl Metrics {
    /// Fresh, all-zero metrics; the uptime clock starts now.
    pub fn new() -> Self {
        Metrics {
            connections_accepted: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            queries_accepted: AtomicU64::new(0),
            queries_answered: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            shed_queries: AtomicU64::new(0),
            oracle_retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            degraded_answers: AtomicU64::new(0),
            admin_commands: AtomicU64::new(0),
            pings: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            frames_rejected: AtomicU64::new(0),
            client_disconnects: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            cleaned_frames: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            // lint:allow(det-wallclock): uptime/qps base for the metrics
            // endpoint; rendered only below WALL_CLOCK_MARKER.
            started: Instant::now(),
        }
    }

    /// `SHOW METRICS` text: deterministic counters, then
    /// [`WALL_CLOCK_MARKER`], then wall-clock-derived lines.
    pub fn render(&self) -> String {
        let ld = Ordering::Relaxed;
        let answered = self.queries_answered.load(ld);
        let mut out = String::new();
        out.push_str(&format!(
            "connections_accepted={}\nconnections_closed={}\n",
            self.connections_accepted.load(ld),
            self.connections_closed.load(ld),
        ));
        out.push_str(&format!(
            "queries_accepted={}\nqueries_answered={}\nqueries_failed={}\n",
            self.queries_accepted.load(ld),
            answered,
            self.queries_failed.load(ld),
        ));
        // Robustness counters: deterministic for a fixed workload and
        // fault seed (shedding only fires when the caller engineers an
        // overload, and then the *count* is part of what the harness
        // asserts via accepted == answered + shed).
        out.push_str(&format!(
            "shed_queries={}\noracle_retries={}\nbreaker_trips={}\ndegraded_answers={}\n",
            self.shed_queries.load(ld),
            self.oracle_retries.load(ld),
            self.breaker_trips.load(ld),
            self.degraded_answers.load(ld),
        ));
        out.push_str(&format!(
            "admin_commands={}\npings={}\n",
            self.admin_commands.load(ld),
            self.pings.load(ld),
        ));
        out.push_str(&format!(
            "protocol_errors={}\nframes_rejected={}\n",
            self.protocol_errors.load(ld),
            self.frames_rejected.load(ld),
        ));
        out.push_str(&format!(
            "client_disconnects={}\nwrite_timeouts={}\nreloads={}\n",
            self.client_disconnects.load(ld),
            self.write_timeouts.load(ld),
            self.reloads.load(ld),
        ));
        out.push_str(&format!(
            "cleaned_frames={}\nbytes_in={}\n",
            self.cleaned_frames.load(ld),
            self.bytes_in.load(ld),
        ));
        out.push_str(WALL_CLOCK_MARKER);
        out.push('\n');
        // bytes_out lives below the marker: rendered answers note cache
        // hits ("phase 1 served from session cache"), and which session
        // scores the hit is scheduling-dependent, so outgoing byte totals
        // vary run to run even when every answer is byte-identical in its
        // canonical form.
        out.push_str(&format!("bytes_out={}\n", self.bytes_out.load(ld)));
        // lint:allow(det-wallclock): qps/uptime section, explicitly
        // quarantined below the marker.
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        out.push_str(&format!("uptime_seconds={uptime:.3}\n"));
        out.push_str(&format!("qps={:.2}\n", answered as f64 / uptime));
        out.push_str(&format!(
            "latency_p50_us={}\nlatency_p99_us={}\n",
            self.latency.quantile_us(0.50),
            self.latency.quantile_us(0.99),
        ));
        out
    }

    /// The deterministic prefix of [`Metrics::render`]: everything above
    /// [`WALL_CLOCK_MARKER`]. This is what determinism harnesses compare
    /// across runs.
    pub fn render_deterministic(&self) -> String {
        // lint:allow(det-taint): render()'s wall-clock section sits below
        // WALL_CLOCK_MARKER and is truncated away on the next line — no
        // wall bits survive into the returned prefix.
        let full = self.render();
        match full.find(WALL_CLOCK_MARKER) {
            Some(pos) => full[..pos].to_string(),
            None => full,
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for us in [1u64, 3, 100, 100, 100, 5000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 6);
        // 100µs lands in bucket [64,128) → upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        // 5000µs lands in [4096,8192) → upper bound 8192.
        assert_eq!(h.quantile_us(1.0), 8192);
        assert_eq!(LatencyHistogram::new().quantile_us(0.99), 0);
    }

    #[test]
    fn render_splits_on_the_marker() {
        let m = Metrics::new();
        m.queries_accepted.fetch_add(3, Ordering::Relaxed);
        m.queries_answered.fetch_add(3, Ordering::Relaxed);
        let full = m.render();
        let det = m.render_deterministic();
        assert!(full.contains(WALL_CLOCK_MARKER));
        assert!(!det.contains(WALL_CLOCK_MARKER));
        assert!(det.contains("queries_accepted=3"));
        assert!(det.contains("queries_answered=3"));
        // The robustness counters are part of the deterministic prefix.
        m.shed_queries.fetch_add(2, Ordering::Relaxed);
        m.oracle_retries.fetch_add(5, Ordering::Relaxed);
        let det = m.render_deterministic();
        assert!(det.contains("shed_queries=2"));
        assert!(det.contains("oracle_retries=5"));
        assert!(det.contains("breaker_trips=0"));
        assert!(det.contains("degraded_answers=0"));
        assert!(!det.contains("qps="));
        assert!(full.contains("latency_p99_us="));
    }
}
