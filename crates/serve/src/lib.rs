//! # everest-serve — the long-running EVQL query daemon
//!
//! The paper's system is a *service*: a catalog of prepared videos
//! answering Top-K queries for many users. Everything else in this
//! workspace is a one-shot binary; this crate is the daemon that makes
//! the "millions of users" north star a load-testable claim. It follows
//! the production-pooler shape (pg_doorman-style): per-connection
//! sessions over a bounded worker pool, one shared single-flight
//! prepared-video cache ([`everest_evql::SharedCache`]), `SHOW`-style
//! admin commands, and a text metrics surface.
//!
//! ```text
//!                    ┌──────────────────────────────────────────┐
//!   TCP clients ───► │ accept loop ─► bounded queue ─► workers  │
//!                    │                                │         │
//!                    │   Session-per-connection ◄─────┘         │
//!                    │      │            │                      │
//!                    │      ▼            ▼                      │
//!                    │  SharedCache   SessionRegistry + Metrics │
//!                    └──────────────────────────────────────────┘
//! ```
//!
//! * **Wire protocol** — length-prefixed frames with a max-frame guard;
//!   codec in [`everest_evql::wire`] (shared with clients and fuzzers).
//! * **Sessions** — each connection gets its own [`everest_evql::Session`]
//!   (settings, `SET`, per-session state) over the shared cache.
//! * **Admin** — `SHOW SESSIONS`, `SHOW CACHES`, `SHOW METRICS`,
//!   `RELOAD` (drop prepared videos), `SHUTDOWN` (graceful drain).
//! * **Graceful shutdown** — stops accepting, finishes every request
//!   whose frame was received, answers it, then exits; the final
//!   [`ShutdownReport`] proves `accepted == answered`.
//! * **Determinism** — query answers carry canonical bytes
//!   ([`everest_evql::wire::canonical_output`]) that are byte-identical
//!   to a single-process session's answer for the same EVQL; metrics
//!   counters are deterministic under concurrency (single-flight cache,
//!   integer counters), with wall-clock-derived lines quarantined below
//!   a marker so harnesses can compare the deterministic prefix.
//!
//! See `docs/SERVING.md` for the frame layout, admin command reference,
//! metrics fields, and shutdown semantics.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;

pub use client::Client;
pub use config::ServeConfig;
pub use loadgen::{flaky_mix, run_loadgen, LoadgenConfig, LoadgenReport};
pub use metrics::{LatencyHistogram, Metrics, WALL_CLOCK_MARKER};
pub use registry::{SessionRegistry, SessionState};
pub use server::{Server, ServerHandle, ShutdownReport};
