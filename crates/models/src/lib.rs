//! # everest-models — simulated deep-model oracles and baseline scorers
//!
//! Everest treats an accurate-but-slow deep model as a ground-truth
//! **oracle** (§2: "a video relation that is materialized by an accurate
//! deep CNN such as YOLOv3 is regarded as the ground-truth"). This crate is
//! the model zoo of the reproduction:
//!
//! * [`oracle`] — the [`oracle::Oracle`] trait (exact batch scoring + a
//!   simulated per-frame GPU cost) with instrumentation;
//! * [`fault`] — fault injection and tolerance: [`fault::FlakyOracle`]
//!   (seeded deterministic timeouts/transient errors/latency spikes) and
//!   [`fault::RetryingOracle`] (sim-clock backoff + circuit breaker);
//! * [`detector`] — ground-truth object detections (boxes + classes) read
//!   back from the synthetic videos, standing in for YOLOv3 output;
//! * [`tracker`] — the IoU-based object tracker that assigns stable
//!   `objectID`s across frames (§2's tracker reference \[67\]);
//! * [`relation`] — the video relation of Table 2 (`ts, class, polygon,
//!   objectID, features`) and its materialisation;
//! * [`counting`] — the default object-counting UDF of Figure 3;
//! * [`depth`] — the depth-estimator oracle behind the tailgating UDF
//!   (Figure 9);
//! * [`classic`] — HOG and TinyYOLOv3 stand-ins: cheap scorers whose noise
//!   and cost constants are calibrated to their roles in Figure 4 (fast
//!   and/or classic, but far too inaccurate to rank frames).
//!
//! Cost constants are simulated seconds per frame; every reported speedup
//! is a ratio of simulated times, so only the *relative* magnitudes matter.

#![deny(unsafe_code)]

pub mod classic;
pub mod counting;
pub mod depth;
pub mod detector;
pub mod fault;
pub mod oracle;
pub mod relation;
pub mod sentiment;
pub mod tracker;

pub use classic::{CheapScorer, HogScorer, TinyYoloScorer};
pub use counting::{counting_oracle, coverage_oracle};
pub use depth::depth_oracle;
pub use detector::{Detection, Detector, GroundTruthDetector};
pub use fault::{FaultPlan, FlakyOracle, OracleError, RetryPolicy, RetryingOracle};
pub use oracle::{ExactScoreOracle, InstrumentedOracle, Oracle};
pub use relation::{VideoRelation, VideoRelationRow};
pub use tracker::IouTracker;
