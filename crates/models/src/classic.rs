//! Classic / lightweight baseline scorers: the HOG and TinyYOLOv3 stand-ins
//! of Figure 4.
//!
//! In the paper, both methods scan every frame and rank by their own
//! (noisy) counts; both end up with zero-to-near-zero Top-K precision
//! because "score errors between frames would lead to large errors in their
//! relative rankings" (§4.1). We reproduce them as *noisy readers of the
//! ground truth*: score = ground truth + heteroscedastic noise + systematic
//! miss/hallucination effects, with per-frame costs calibrated to their
//! roles (HOG: slow CPU sliding-window SVM; TinyYOLO: fast but shallow).

use crate::oracle::{ExactScoreOracle, Oracle};
use everest_video::util::{frame_rng, gaussian};
use rand::Rng;

/// Simulated HOG+SVM cost: hundreds of SVM evaluations per frame on CPU.
/// The paper found HOG *slower than Everest end-to-end* despite being
/// non-deep.
pub const HOG_COST_PER_FRAME: f64 = 0.045;

/// Simulated TinyYOLOv3 cost (the "light" real-time detector).
pub const TINY_YOLO_COST_PER_FRAME: f64 = 0.008;

/// A cheap scan-every-frame scorer: noisy scores at a low per-frame cost.
pub trait CheapScorer: Send + Sync {
    /// Noisy score for frame `t` (deterministic per (scorer, frame)).
    fn score(&self, t: usize) -> f64;
    fn cost_per_frame(&self) -> f64;
    fn num_frames(&self) -> usize;
    fn name(&self) -> &str;

    /// All scores (the baseline scans the full video anyway).
    fn score_all(&self) -> Vec<f64> {
        (0..self.num_frames()).map(|t| self.score(t)).collect()
    }
}

/// HOG + SVM sliding-window counter: large heteroscedastic noise plus
/// frequent miss/double-count events.
pub struct HogScorer {
    truth: ExactScoreOracle,
    seed: u64,
}

impl HogScorer {
    pub fn new(truth: ExactScoreOracle, seed: u64) -> Self {
        HogScorer { truth, seed }
    }
}

impl CheapScorer for HogScorer {
    fn score(&self, t: usize) -> f64 {
        let gt = self.truth.score(t);
        let mut rng = frame_rng(self.seed ^ 0x4067, t);
        // multiplicative detection-rate wobble + additive clutter noise
        let rate: f64 = rng.gen_range(0.3..1.3);
        let clutter = gaussian(&mut rng) * (1.5 + 0.5 * gt);
        (gt * rate + clutter).max(0.0).round()
    }

    fn cost_per_frame(&self) -> f64 {
        HOG_COST_PER_FRAME
    }

    fn num_frames(&self) -> usize {
        self.truth.num_frames()
    }

    fn name(&self) -> &str {
        "hog-svm"
    }
}

/// TinyYOLOv3: cheaper and a little less wrong than HOG, still far too
/// noisy to rank frames whose true scores differ by one or two objects.
pub struct TinyYoloScorer {
    truth: ExactScoreOracle,
    seed: u64,
}

impl TinyYoloScorer {
    pub fn new(truth: ExactScoreOracle, seed: u64) -> Self {
        TinyYoloScorer { truth, seed }
    }
}

impl CheapScorer for TinyYoloScorer {
    fn score(&self, t: usize) -> f64 {
        let gt = self.truth.score(t);
        let mut rng = frame_rng(self.seed ^ 0x719_0101, t);
        let rate: f64 = rng.gen_range(0.55..1.15); // misses small objects
        let noise = gaussian(&mut rng) * (0.8 + 0.3 * gt);
        (gt * rate + noise).max(0.0).round()
    }

    fn cost_per_frame(&self) -> f64 {
        TINY_YOLO_COST_PER_FRAME
    }

    fn num_frames(&self) -> usize {
        self.truth.num_frames()
    }

    fn name(&self) -> &str {
        "tiny-yolov3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> ExactScoreOracle {
        let scores: Vec<f64> = (0..2_000).map(|t| (t % 17) as f64).collect();
        ExactScoreOracle::new("gt", scores, 0.08)
    }

    #[test]
    fn scores_are_deterministic() {
        let hog = HogScorer::new(truth(), 5);
        assert_eq!(hog.score(100), hog.score(100));
        let tiny = TinyYoloScorer::new(truth(), 5);
        assert_eq!(tiny.score(100), tiny.score(100));
    }

    #[test]
    fn scores_are_nonnegative_integers() {
        let hog = HogScorer::new(truth(), 6);
        for t in 0..500 {
            let s = hog.score(t);
            assert!(s >= 0.0 && s.fract() == 0.0, "bad HOG score {s}");
        }
    }

    #[test]
    fn noise_is_correlated_with_truth_but_large() {
        let tiny = TinyYoloScorer::new(truth(), 7);
        let gt = truth();
        let n = 2_000;
        let xs: Vec<f64> = (0..n).map(|t| gt.score(t)).collect();
        let ys: Vec<f64> = (0..n).map(|t| tiny.score(t)).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n as f64;
        let sx = (xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>() / n as f64).sqrt();
        let sy = (ys.iter().map(|y| (y - my) * (y - my)).sum::<f64>() / n as f64).sqrt();
        let corr = cov / (sx * sy);
        assert!(
            corr > 0.4,
            "cheap scorer should correlate with truth: {corr}"
        );
        assert!(corr < 0.95, "but not be accurate enough to rank: {corr}");
        // average absolute error should be large relative to the unit score
        // differences that decide Top-K membership
        let mae: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - y).abs()).sum::<f64>() / n as f64;
        assert!(mae > 1.0, "MAE {mae} too small to model a weak detector");
    }

    #[test]
    fn tiny_is_cheaper_than_hog_and_both_cheaper_than_oracle() {
        let hog = HogScorer::new(truth(), 1);
        let tiny = TinyYoloScorer::new(truth(), 1);
        assert!(tiny.cost_per_frame() < hog.cost_per_frame());
        assert!(hog.cost_per_frame() < truth().cost_per_frame());
    }

    #[test]
    fn score_all_covers_video() {
        let hog = HogScorer::new(truth(), 2);
        let all = hog.score_all();
        assert_eq!(all.len(), 2_000);
        assert_eq!(all[42], hog.score(42));
    }
}
