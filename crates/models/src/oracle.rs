//! The scoring oracle abstraction.
//!
//! A scoring UDF (Figure 3) takes frames and returns their exact scores by
//! running the accurate-but-slow model. In this reproduction the scores are
//! read from the synthetic video's ground truth and the *cost* of the model
//! is simulated: every scored frame charges `cost_per_frame` simulated
//! seconds to whoever is accounting (the pipeline's `SimClock`).

use crate::fault::OracleError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An accurate-but-slow scoring model.
pub trait Oracle: Send + Sync {
    /// Exact scores for a batch of frame indices.
    fn score_batch(&self, frames: &[usize]) -> Vec<f64>;

    /// Fallible batch scoring: the surface a production detector
    /// actually has (it times out, throttles, dies). The default wraps
    /// the infallible path and never fails; fault-injection wrappers
    /// ([`crate::fault::FlakyOracle`]) and fault-tolerance wrappers
    /// ([`crate::fault::RetryingOracle`]) override it.
    fn try_score_batch(&self, frames: &[usize]) -> Result<Vec<f64>, OracleError> {
        Ok(self.score_batch(frames))
    }

    /// Simulated inference cost per frame, in seconds.
    fn cost_per_frame(&self) -> f64;

    /// Simulated seconds of *overhead* accumulated beyond per-frame
    /// scoring cost — fault penalties, retry backoff. Budget-aware
    /// callers add this to `frames_scored * cost_per_frame` when
    /// enforcing deadlines. Default: no overhead.
    fn sim_overhead_seconds(&self) -> f64 {
        0.0
    }

    /// Total number of frames the oracle could score.
    fn num_frames(&self) -> usize;

    /// Human-readable model name.
    fn name(&self) -> &str;

    /// Convenience: exact score of a single frame.
    fn score(&self, frame: usize) -> f64 {
        self.score_batch(&[frame])[0]
    }
}

/// Default simulated cost of the YOLOv3-class oracle detector, seconds per
/// frame. State-of-the-art detectors run at ~5–12 fps on a 2017-era GPU
/// (§1 cites ~5 fps); 100 ms/frame sits in that band.
pub const YOLO_COST_PER_FRAME: f64 = 0.100;

/// Simulated cost of the monocular depth estimator (Fig. 9's oracle).
pub const DEPTH_COST_PER_FRAME: f64 = 0.060;

/// An oracle backed by a precomputed exact-score table.
///
/// This is the universal adapter: counting scores, tailgating degrees, or
/// any other UDF's ground truth reduce to "exact score per frame + cost".
#[derive(Debug, Clone)]
pub struct ExactScoreOracle {
    name: String,
    scores: Arc<Vec<f64>>,
    cost_per_frame: f64,
}

impl ExactScoreOracle {
    pub fn new(name: impl Into<String>, scores: Vec<f64>, cost_per_frame: f64) -> Self {
        assert!(!scores.is_empty(), "oracle needs at least one frame");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "scores must be finite"
        );
        assert!(cost_per_frame >= 0.0);
        ExactScoreOracle {
            name: name.into(),
            scores: Arc::new(scores),
            cost_per_frame,
        }
    }

    /// Direct access to the full ground-truth table (used by baselines that
    /// conceptually scan every frame, and by result-quality metrics).
    pub fn all_scores(&self) -> &[f64] {
        &self.scores
    }
}

impl Oracle for ExactScoreOracle {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64> {
        frames.iter().map(|&f| self.scores[f]).collect()
    }

    fn cost_per_frame(&self) -> f64 {
        self.cost_per_frame
    }

    fn num_frames(&self) -> usize {
        self.scores.len()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Wraps an oracle and counts usage — the pipeline reads these counters to
/// charge simulated time and to report Table 8's "% of frames cleaned".
pub struct InstrumentedOracle<O: Oracle> {
    inner: O,
    frames_scored: AtomicU64,
    batches: AtomicU64,
    /// Frame indices scored, in invocation order (for decode-cost replay).
    trace: Mutex<Vec<usize>>,
    keep_trace: bool,
}

impl<O: Oracle> InstrumentedOracle<O> {
    pub fn new(inner: O) -> Self {
        InstrumentedOracle {
            inner,
            frames_scored: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
            keep_trace: false,
        }
    }

    /// Enables recording of the exact access order (costs memory; off by
    /// default).
    pub fn with_trace(mut self) -> Self {
        self.keep_trace = true;
        self
    }

    pub fn frames_scored(&self) -> u64 {
        self.frames_scored.load(Ordering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Simulated seconds consumed by all scoring so far.
    pub fn simulated_cost(&self) -> f64 {
        self.frames_scored() as f64 * self.inner.cost_per_frame()
    }

    pub fn take_trace(&self) -> Vec<usize> {
        std::mem::take(&mut self.trace.lock())
    }

    pub fn inner(&self) -> &O {
        &self.inner
    }

    pub fn reset(&self) {
        self.frames_scored.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.trace.lock().clear();
    }
}

impl<O: Oracle> Oracle for InstrumentedOracle<O> {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64> {
        self.frames_scored
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if self.keep_trace {
            self.trace.lock().extend_from_slice(frames);
        }
        self.inner.score_batch(frames)
    }

    fn try_score_batch(&self, frames: &[usize]) -> Result<Vec<f64>, OracleError> {
        // Counters move only on success: a failed call scored nothing, so
        // neither simulated cost nor "% cleaned" should charge for it.
        let scores = self.inner.try_score_batch(frames)?;
        self.frames_scored
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if self.keep_trace {
            self.trace.lock().extend_from_slice(frames);
        }
        Ok(scores)
    }

    fn cost_per_frame(&self) -> f64 {
        self.inner.cost_per_frame()
    }

    fn sim_overhead_seconds(&self) -> f64 {
        self.inner.sim_overhead_seconds()
    }

    fn num_frames(&self) -> usize {
        self.inner.num_frames()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> ExactScoreOracle {
        ExactScoreOracle::new("test", vec![1.0, 2.0, 3.0, 4.0], 0.1)
    }

    #[test]
    fn score_batch_reads_table() {
        let o = oracle();
        assert_eq!(o.score_batch(&[2, 0]), vec![3.0, 1.0]);
        assert_eq!(o.score(3), 4.0);
        assert_eq!(o.num_frames(), 4);
        assert_eq!(o.name(), "test");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_scores_rejected() {
        let _ = ExactScoreOracle::new("x", vec![], 0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_scores_rejected() {
        let _ = ExactScoreOracle::new("x", vec![f64::NAN], 0.1);
    }

    #[test]
    fn instrumentation_counts_frames_and_batches() {
        let o = InstrumentedOracle::new(oracle());
        let _ = o.score_batch(&[0, 1]);
        let _ = o.score_batch(&[2]);
        assert_eq!(o.frames_scored(), 3);
        assert_eq!(o.batches(), 2);
        assert!((o.simulated_cost() - 0.3).abs() < 1e-12);
        o.reset();
        assert_eq!(o.frames_scored(), 0);
    }

    #[test]
    fn trace_records_order_when_enabled() {
        let o = InstrumentedOracle::new(oracle()).with_trace();
        let _ = o.score_batch(&[3, 1]);
        let _ = o.score_batch(&[0]);
        assert_eq!(o.take_trace(), vec![3, 1, 0]);
        assert!(o.take_trace().is_empty(), "trace is drained");
    }

    #[test]
    fn trace_disabled_by_default() {
        let o = InstrumentedOracle::new(oracle());
        let _ = o.score_batch(&[1]);
        assert!(o.take_trace().is_empty());
    }
}
