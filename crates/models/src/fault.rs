//! Fault injection and fault tolerance for the scoring oracle.
//!
//! The paper's oracle is a real GPU detector — exactly the component
//! that times out, throttles, or dies in production. This module gives
//! the reproduction a *deterministic* stand-in for those failures so the
//! degradation machinery can be tested bit-for-bit:
//!
//! * [`OracleError`] — why a scoring call failed;
//! * [`FlakyOracle`] — wraps any oracle with a **seeded, deterministic
//!   schedule** of timeouts, transient errors, and latency spikes: the
//!   fault decision for call `i` is a pure function of `(seed, i)`, so a
//!   replay with the same seed sees exactly the same faults;
//! * [`RetryingOracle`] — retries transient failures with capped
//!   exponential backoff charged to the **simulated clock** (never
//!   wall-clock), plus a circuit breaker that trips after N consecutive
//!   exhausted-retry failures and fails fast until reset.
//!
//! Fault penalties and backoff accumulate in
//! [`Oracle::sim_overhead_seconds`], which budget-aware callers (the
//! Phase-2 cleaner's deadline check) add to the per-frame scoring cost.

use crate::oracle::Oracle;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Why an oracle call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// The call timed out after `sim_seconds` of simulated waiting.
    /// Retryable.
    Timeout {
        /// Simulated seconds spent waiting before giving up.
        sim_seconds: f64,
    },
    /// A transient failure (throttling, a dropped RPC, a worker restart).
    /// Retryable.
    Transient(&'static str),
    /// The circuit breaker is open: the oracle failed too many times in a
    /// row and callers must stop hammering it. Not retryable.
    BreakerOpen {
        /// Consecutive exhausted-retry failures that tripped the breaker.
        consecutive_failures: u32,
    },
}

impl OracleError {
    /// Whether a retry could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, OracleError::BreakerOpen { .. })
    }
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Timeout { sim_seconds } => {
                write!(
                    f,
                    "oracle call timed out after {sim_seconds:.3} simulated seconds"
                )
            }
            OracleError::Transient(what) => write!(f, "transient oracle failure: {what}"),
            OracleError::BreakerOpen {
                consecutive_failures,
            } => write!(
                f,
                "oracle circuit breaker open after {consecutive_failures} consecutive failures"
            ),
        }
    }
}

impl std::error::Error for OracleError {}

/// The seeded fault schedule of a [`FlakyOracle`].
///
/// Probabilities are per-mille of *calls* (not frames); the decision for
/// call `i` hashes `(seed, i)` with splitmix64, so it is independent of
/// batch contents, thread timing, and everything else — two runs with the
/// same seed fault on exactly the same call indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Per-mille of calls that time out (charged `timeout_penalty`).
    pub timeout_per_mille: u64,
    /// Per-mille of calls that fail transiently (no simulated charge —
    /// the failure is immediate).
    pub transient_per_mille: u64,
    /// Per-mille of calls that *succeed* but take a latency spike
    /// (charged `spike_penalty` on top of normal scoring cost).
    pub spike_per_mille: u64,
    /// Simulated seconds burnt by a timeout before it errors.
    pub timeout_penalty: f64,
    /// Extra simulated seconds a latency spike costs.
    pub spike_penalty: f64,
}

impl FaultPlan {
    /// The default chaos mix for `seed`: 5% timeouts, 10% transient
    /// errors, 10% latency spikes; a timeout burns 1 simulated second, a
    /// spike half of one.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout_per_mille: 50,
            transient_per_mille: 100,
            spike_per_mille: 100,
            timeout_penalty: 1.0,
            spike_penalty: 0.5,
        }
    }
}

/// splitmix64 — the same tiny seeded hash the loadgen uses; fault
/// schedules must not depend on a library RNG's evolution.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the fault schedule decides for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Timeout,
    Transient,
    Spike,
    None,
}

/// Wraps an oracle with a seeded, deterministic schedule of timeouts,
/// transient errors, and latency spikes.
///
/// Faults surface only on the fallible path
/// ([`Oracle::try_score_batch`]); the infallible [`Oracle::score_batch`]
/// delegates straight to the inner oracle so legacy callers keep
/// working. Fault penalties accumulate in
/// [`Oracle::sim_overhead_seconds`].
pub struct FlakyOracle<O: Oracle> {
    inner: O,
    plan: FaultPlan,
    calls: AtomicU64,
    timeouts: AtomicU64,
    transients: AtomicU64,
    spikes: AtomicU64,
    overhead: Mutex<f64>,
}

impl<O: Oracle> FlakyOracle<O> {
    /// Wraps `inner` with the default chaos mix for `seed`
    /// ([`FaultPlan::new`]).
    pub fn new(inner: O, seed: u64) -> Self {
        FlakyOracle::with_plan(inner, FaultPlan::new(seed))
    }

    /// Wraps `inner` with an explicit fault schedule.
    pub fn with_plan(inner: O, plan: FaultPlan) -> Self {
        assert!(
            plan.timeout_per_mille + plan.transient_per_mille + plan.spike_per_mille <= 1000,
            "fault probabilities exceed 100%"
        );
        assert!(plan.timeout_penalty >= 0.0 && plan.spike_penalty >= 0.0);
        FlakyOracle {
            inner,
            plan,
            calls: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            overhead: Mutex::new(0.0),
        }
    }

    /// The deterministic fault decision for call index `idx`.
    fn decide(&self, idx: u64) -> Fault {
        let r = splitmix64(self.plan.seed ^ idx.wrapping_mul(0xa076_1d64_78bd_642f)) % 1000;
        let t = self.plan.timeout_per_mille;
        let e = t + self.plan.transient_per_mille;
        let s = e + self.plan.spike_per_mille;
        if r < t {
            Fault::Timeout
        } else if r < e {
            Fault::Transient
        } else if r < s {
            Fault::Spike
        } else {
            Fault::None
        }
    }

    /// Calls attempted so far (each advances the schedule by one).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Timeouts injected so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Transient errors injected so far.
    pub fn transients(&self) -> u64 {
        self.transients.load(Ordering::Relaxed)
    }

    /// Latency spikes injected so far.
    pub fn spikes(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// The inner oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> Oracle for FlakyOracle<O> {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64> {
        self.inner.score_batch(frames)
    }

    fn try_score_batch(&self, frames: &[usize]) -> Result<Vec<f64>, OracleError> {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.decide(idx) {
            Fault::Timeout => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                *self.overhead.lock() += self.plan.timeout_penalty;
                Err(OracleError::Timeout {
                    sim_seconds: self.plan.timeout_penalty,
                })
            }
            Fault::Transient => {
                self.transients.fetch_add(1, Ordering::Relaxed);
                Err(OracleError::Transient("injected fault"))
            }
            Fault::Spike => {
                self.spikes.fetch_add(1, Ordering::Relaxed);
                *self.overhead.lock() += self.plan.spike_penalty;
                self.inner.try_score_batch(frames)
            }
            Fault::None => self.inner.try_score_batch(frames),
        }
    }

    fn cost_per_frame(&self) -> f64 {
        self.inner.cost_per_frame()
    }

    fn num_frames(&self) -> usize {
        self.inner.num_frames()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn sim_overhead_seconds(&self) -> f64 {
        *self.overhead.lock() + self.inner.sim_overhead_seconds()
    }
}

/// Retry policy of a [`RetryingOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per call after the first attempt.
    pub max_retries: u32,
    /// Backoff before retry `i` is `base_backoff * 2^i`, in simulated
    /// seconds…
    pub base_backoff: f64,
    /// …capped at this many simulated seconds.
    pub max_backoff: f64,
    /// Consecutive exhausted-retry failures that trip the breaker.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 0.1,
            max_backoff: 2.0,
            breaker_threshold: 4,
        }
    }
}

/// Retries transient failures with deterministic capped exponential
/// backoff and trips a circuit breaker after too many consecutive
/// failures.
///
/// Backoff is charged to the **simulated clock** (it accumulates in
/// [`Oracle::sim_overhead_seconds`]) — no thread ever sleeps, so tests
/// and replays run at full speed and remain byte-deterministic.
pub struct RetryingOracle<O: Oracle> {
    inner: O,
    policy: RetryPolicy,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    consecutive_failures: AtomicU32,
    breaker_open: AtomicBool,
    backoff: Mutex<f64>,
}

impl<O: Oracle> RetryingOracle<O> {
    /// Wraps `inner` with the default [`RetryPolicy`].
    pub fn new(inner: O) -> Self {
        RetryingOracle::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: O, policy: RetryPolicy) -> Self {
        assert!(policy.base_backoff >= 0.0 && policy.max_backoff >= 0.0);
        assert!(policy.breaker_threshold >= 1);
        RetryingOracle {
            inner,
            policy,
            retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            consecutive_failures: AtomicU32::new(0),
            breaker_open: AtomicBool::new(false),
            backoff: Mutex::new(0.0),
        }
    }

    /// Retries performed so far (attempts beyond the first, across all
    /// calls).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Times the breaker has tripped.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips.load(Ordering::Relaxed)
    }

    /// Whether the breaker is currently open (calls fail fast).
    pub fn breaker_is_open(&self) -> bool {
        self.breaker_open.load(Ordering::Relaxed)
    }

    /// Closes the breaker and forgets the failure streak (an operator
    /// "the detector is back" reset).
    pub fn reset_breaker(&self) {
        self.breaker_open.store(false, Ordering::Relaxed);
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// The inner oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: Oracle> Oracle for RetryingOracle<O> {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64> {
        self.inner.score_batch(frames)
    }

    fn try_score_batch(&self, frames: &[usize]) -> Result<Vec<f64>, OracleError> {
        if self.breaker_open.load(Ordering::Relaxed) {
            return Err(OracleError::BreakerOpen {
                consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            });
        }
        let mut attempt = 0u32;
        loop {
            match self.inner.try_score_batch(frames) {
                Ok(scores) => {
                    self.consecutive_failures.store(0, Ordering::Relaxed);
                    return Ok(scores);
                }
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    let backoff = (self.policy.base_backoff * f64::powi(2.0, attempt as i32))
                        .min(self.policy.max_backoff);
                    *self.backoff.lock() += backoff;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => {
                    let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if streak >= self.policy.breaker_threshold
                        && !self.breaker_open.swap(true, Ordering::Relaxed)
                    {
                        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }

    fn cost_per_frame(&self) -> f64 {
        self.inner.cost_per_frame()
    }

    fn num_frames(&self) -> usize {
        self.inner.num_frames()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn sim_overhead_seconds(&self) -> f64 {
        *self.backoff.lock() + self.inner.sim_overhead_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactScoreOracle;

    fn table() -> ExactScoreOracle {
        ExactScoreOracle::new("t", (0..100).map(|i| i as f64).collect(), 0.1)
    }

    /// A plan that faults on every call, useful for breaker tests.
    fn always_transient() -> FaultPlan {
        FaultPlan {
            seed: 0,
            timeout_per_mille: 0,
            transient_per_mille: 1000,
            spike_per_mille: 0,
            timeout_penalty: 0.0,
            spike_penalty: 0.0,
        }
    }

    #[test]
    fn default_try_path_wraps_infallible() {
        let o = table();
        assert_eq!(o.try_score_batch(&[3, 7]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(o.sim_overhead_seconds(), 0.0);
    }

    #[test]
    fn flaky_schedule_is_deterministic() {
        let a = FlakyOracle::new(table(), 42);
        let b = FlakyOracle::new(table(), 42);
        let ra: Vec<bool> = (0..200).map(|_| a.try_score_batch(&[0]).is_ok()).collect();
        let rb: Vec<bool> = (0..200).map(|_| b.try_score_batch(&[0]).is_ok()).collect();
        assert_eq!(ra, rb, "same seed must fault on the same calls");
        assert!(ra.iter().any(|ok| !ok), "default mix injects failures");
        assert!(ra.iter().any(|ok| *ok), "default mix lets calls through");
        assert_eq!(a.timeouts(), b.timeouts());
        assert_eq!(a.spikes(), b.spikes());
        assert_eq!(a.sim_overhead_seconds(), b.sim_overhead_seconds());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FlakyOracle::new(table(), 1);
        let b = FlakyOracle::new(table(), 2);
        let ra: Vec<bool> = (0..300).map(|_| a.try_score_batch(&[0]).is_ok()).collect();
        let rb: Vec<bool> = (0..300).map(|_| b.try_score_batch(&[0]).is_ok()).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn flaky_charges_sim_penalties() {
        let plan = FaultPlan {
            seed: 7,
            timeout_per_mille: 1000,
            transient_per_mille: 0,
            spike_per_mille: 0,
            timeout_penalty: 1.5,
            spike_penalty: 0.0,
        };
        let o = FlakyOracle::with_plan(table(), plan);
        assert!(matches!(
            o.try_score_batch(&[0]),
            Err(OracleError::Timeout { .. })
        ));
        assert!((o.sim_overhead_seconds() - 1.5).abs() < 1e-12);
        let _ = o.try_score_batch(&[0]);
        assert!((o.sim_overhead_seconds() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flaky_infallible_path_bypasses_faults() {
        let o = FlakyOracle::with_plan(table(), always_transient());
        assert_eq!(o.score_batch(&[5]), vec![5.0]);
    }

    #[test]
    fn retry_succeeds_through_transient_faults() {
        // Seeded mix with ~25% failures: 3 retries make per-call failure
        // (~0.25^4) rare enough that 50 calls all succeed.
        let plan = FaultPlan {
            seed: 3,
            timeout_per_mille: 100,
            transient_per_mille: 150,
            spike_per_mille: 0,
            timeout_penalty: 1.0,
            spike_penalty: 0.0,
        };
        let o = RetryingOracle::new(FlakyOracle::with_plan(table(), plan));
        for i in 0..50 {
            assert_eq!(o.try_score_batch(&[i]).unwrap(), vec![i as f64]);
        }
        assert!(o.retries() > 0, "the schedule must have injected faults");
        assert_eq!(o.breaker_trips(), 0);
        assert!(o.sim_overhead_seconds() > 0.0, "backoff charges sim time");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_retries: 4,
            base_backoff: 0.1,
            max_backoff: 0.3,
            breaker_threshold: 100,
        };
        let o = RetryingOracle::with_policy(
            FlakyOracle::with_plan(table(), always_transient()),
            policy,
        );
        assert!(o.try_score_batch(&[0]).is_err());
        // 0.1 + 0.2 + 0.3 (capped) + 0.3 (capped)
        assert!((o.sim_overhead_seconds() - 0.9).abs() < 1e-12);
        assert_eq!(o.retries(), 4);
    }

    #[test]
    fn breaker_trips_and_fails_fast() {
        let policy = RetryPolicy {
            max_retries: 0,
            base_backoff: 0.0,
            max_backoff: 0.0,
            breaker_threshold: 3,
        };
        let flaky = FlakyOracle::with_plan(table(), always_transient());
        let o = RetryingOracle::with_policy(flaky, policy);
        for _ in 0..3 {
            assert!(matches!(
                o.try_score_batch(&[0]),
                Err(OracleError::Transient(_))
            ));
        }
        assert!(o.breaker_is_open());
        assert_eq!(o.breaker_trips(), 1);
        let calls_before = o.inner().calls();
        assert!(matches!(
            o.try_score_batch(&[0]),
            Err(OracleError::BreakerOpen { .. })
        ));
        assert_eq!(o.inner().calls(), calls_before, "open breaker fails fast");
        o.reset_breaker();
        assert!(!o.breaker_is_open());
        assert!(o.try_score_batch(&[0]).is_err(), "oracle is still down");
        assert_eq!(o.breaker_trips(), 1, "re-tripping needs a fresh streak");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        // Fails twice, then works: with threshold 3 the breaker must
        // never trip because successes clear the streak.
        let plan = FaultPlan {
            seed: 11,
            timeout_per_mille: 0,
            transient_per_mille: 300,
            spike_per_mille: 0,
            timeout_penalty: 0.0,
            spike_penalty: 0.0,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: 0.0,
            max_backoff: 0.0,
            breaker_threshold: 3,
        };
        let o = RetryingOracle::with_policy(FlakyOracle::with_plan(table(), plan), policy);
        let mut any_ok = false;
        for _ in 0..100 {
            any_ok |= o.try_score_batch(&[0]).is_ok();
        }
        assert!(any_ok);
        assert_eq!(o.breaker_trips(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = OracleError::Timeout { sim_seconds: 1.0 };
        assert!(e.to_string().contains("timed out"));
        assert!(e.is_retryable());
        let e = OracleError::BreakerOpen {
            consecutive_failures: 4,
        };
        assert!(e.to_string().contains("circuit breaker"));
        assert!(!e.is_retryable());
    }
}
