//! The video relation of Table 2: the relational view of a video that a
//! ground-truth detector + tracker materialise.
//!
//! Each row corresponds to one object in one frame: `(ts, class, polygon,
//! objectID, features)`. Fully materialising this relation is what the
//! naive scan-and-test approach pays for — Everest's whole point is
//! answering Top-K *without* building the full relation. It still needs to
//! exist as a substrate: baselines scan it, and tests validate oracle
//! scores against it.

use crate::detector::Detector;
use crate::tracker::{IouTracker, TrackerConfig};
use everest_video::frame::BBox;
use everest_video::scene::ObjectClass;

/// One tuple of the video relation (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct VideoRelationRow {
    /// Frame timestamp (frame index; wall-clock time = ts / fps).
    pub ts: usize,
    pub class: ObjectClass,
    /// The object's bounding polygon (boxes in this reproduction).
    pub polygon: BBox,
    /// Stable identity assigned by the tracker.
    pub object_id: u64,
    /// A small feature vector (box geometry), standing in for the CNN
    /// feature column of Table 2.
    pub features: [f32; 4],
}

/// A materialised video relation.
#[derive(Debug, Clone, Default)]
pub struct VideoRelation {
    rows: Vec<VideoRelationRow>,
}

impl VideoRelation {
    /// Materialises the relation over `[0, n_frames)` using a detector and
    /// an IoU tracker — the scan-and-test substrate.
    pub fn materialize(detector: &dyn Detector, tracker_cfg: TrackerConfig) -> Self {
        let mut tracker = IouTracker::new(tracker_cfg);
        let mut rows = Vec::new();
        for t in 0..detector.num_frames() {
            let dets = detector.detect(t);
            let ids = tracker.update(&dets);
            for (d, &id) in dets.iter().zip(ids.iter()) {
                rows.push(VideoRelationRow {
                    ts: t,
                    class: d.class,
                    polygon: d.bbox,
                    object_id: id,
                    features: [d.bbox.x, d.bbox.y, d.bbox.w, d.bbox.h],
                });
            }
        }
        VideoRelation { rows }
    }

    pub fn rows(&self) -> &[VideoRelationRow] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of tuples at a given timestamp with the given class — the
    /// object-counting score of the default UDF.
    pub fn count_at(&self, ts: usize, class: ObjectClass) -> usize {
        // rows are ts-ordered by construction
        let start = self.rows.partition_point(|r| r.ts < ts);
        self.rows[start..]
            .iter()
            .take_while(|r| r.ts == ts)
            .filter(|r| r.class == class)
            .count()
    }

    /// Distinct object ids in the relation.
    pub fn distinct_objects(&self) -> usize {
        let mut ids: Vec<u64> = self.rows.iter().map(|r| r.object_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// All rows of one object, ordered by timestamp (its trajectory).
    pub fn trajectory(&self, object_id: u64) -> Vec<&VideoRelationRow> {
        self.rows
            .iter()
            .filter(|r| r.object_id == object_id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::GroundTruthDetector;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::{SceneConfig, SyntheticVideo};

    fn relation() -> (VideoRelation, GroundTruthDetector<SyntheticVideo>) {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 300,
                base_intensity: 1.5,
                burst_rate_per_10k: 0.0,
                ..ArrivalConfig::default()
            },
            21,
        );
        let video = SyntheticVideo::new(
            SceneConfig {
                width: 64,
                height: 64,
                ..SceneConfig::default()
            },
            tl,
            21,
            30.0,
        );
        let det = GroundTruthDetector::new(video);
        let rel = VideoRelation::materialize(&det, TrackerConfig::default());
        (rel, det)
    }

    #[test]
    fn row_count_matches_total_object_frames() {
        let (rel, det) = relation();
        let expected: usize = (0..det.num_frames())
            .map(|t| det.video().count_at(t) as usize)
            .sum();
        assert_eq!(rel.len(), expected);
    }

    #[test]
    fn count_at_matches_ground_truth() {
        let (rel, det) = relation();
        for t in (0..det.num_frames()).step_by(17) {
            assert_eq!(
                rel.count_at(t, ObjectClass::Car),
                det.video().count_at(t) as usize,
                "frame {t}"
            );
        }
    }

    #[test]
    fn trajectories_are_temporally_ordered() {
        let (rel, _) = relation();
        if rel.is_empty() {
            return;
        }
        let id = rel.rows()[0].object_id;
        let traj = rel.trajectory(id);
        assert!(!traj.is_empty());
        assert!(traj.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn distinct_objects_close_to_ground_truth() {
        let (rel, det) = relation();
        let gt = det.video().timeline().num_objects();
        let tracked = rel.distinct_objects();
        // tracking may fragment a few tracks but should be the right order
        // of magnitude
        assert!(
            tracked >= gt / 2 && tracked <= gt * 2,
            "tracked {tracked} vs gt {gt}"
        );
    }

    #[test]
    fn empty_relation() {
        let rel = VideoRelation::default();
        assert!(rel.is_empty());
        assert_eq!(rel.distinct_objects(), 0);
        assert_eq!(rel.count_at(0, ObjectClass::Car), 0);
    }
}
