//! The depth-estimator oracle behind the tailgating UDF (Figure 9).
//!
//! The paper's fleet-management UDF ranks dashcam frames by the distance to
//! the front vehicle estimated with a monocular depth network (Godard et
//! al.). Our simulated equivalent reads the dashcam's ground-truth lead
//! distance and converts it to a *tailgating degree* (larger = closer =
//! more dangerous); each scored frame charges the depth model's simulated
//! cost. Scores are continuous, so queries over this oracle must supply a
//! quantization step (§3.2).

use crate::oracle::{ExactScoreOracle, DEPTH_COST_PER_FRAME};
use everest_video::dashcam::DashcamVideo;
use everest_video::VideoStore;

/// Builds the tailgating-degree oracle for a dashcam video.
pub fn depth_oracle(video: &DashcamVideo) -> ExactScoreOracle {
    let scores: Vec<f64> = (0..video.num_frames())
        .map(|t| video.tailgating_score(t))
        .collect();
    ExactScoreOracle::new("depth-tailgating", scores, DEPTH_COST_PER_FRAME)
}

/// The recommended quantization step for tailgating scores (they live in
/// `(0.8, 50.0]`; 0.5 gives ~100 buckets).
pub const TAILGATING_QUANTIZATION_STEP: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use everest_video::dashcam::DashcamConfig;

    #[test]
    fn scores_invert_distance() {
        let v = DashcamVideo::new(
            DashcamConfig {
                n_frames: 2_000,
                ..Default::default()
            },
            7,
        );
        let oracle = depth_oracle(&v);
        assert_eq!(oracle.num_frames(), 2_000);
        // the closest moment must be the top-scoring frame
        // distances can tie at the clamp floor, so compare scores not indices
        let closest = (0..2_000)
            .min_by(|&a, &b| v.lead_distance(a).partial_cmp(&v.lead_distance(b)).unwrap())
            .unwrap();
        let top = (0..2_000)
            .max_by(|&a, &b| oracle.score(a).partial_cmp(&oracle.score(b)).unwrap())
            .unwrap();
        assert_eq!(oracle.score(closest), oracle.score(top));
        assert_eq!(v.lead_distance(closest), v.lead_distance(top));
        assert_eq!(oracle.cost_per_frame(), DEPTH_COST_PER_FRAME);
    }

    #[test]
    fn scores_are_bounded() {
        let v = DashcamVideo::new(
            DashcamConfig {
                n_frames: 1_000,
                ..Default::default()
            },
            8,
        );
        let oracle = depth_oracle(&v);
        for t in 0..1_000 {
            let s = oracle.score(t);
            assert!(s > 0.0 && s <= 50.0, "score {s} out of range at {t}");
        }
    }
}
