//! The default object-counting UDF (Figure 3).
//!
//! ```python
//! def score_func(frames):
//!     object_lists = oracle(frames, object_of_interest)
//!     scores = [len(objects) for objects in object_lists]
//!     return scores
//! ```
//!
//! Our equivalent: the oracle detector reads the ground-truth annotations
//! and the score of a frame is the number of objects of the class of
//! interest; each scored frame charges the YOLO-class simulated cost.

use crate::oracle::{ExactScoreOracle, YOLO_COST_PER_FRAME};
use everest_video::scene::SyntheticVideo;
use everest_video::visualroad::VisualRoadVideo;

/// Builds the counting oracle for a Table 7-style synthetic video.
pub fn counting_oracle(video: &SyntheticVideo) -> ExactScoreOracle {
    let scores: Vec<f64> = video
        .timeline()
        .counts()
        .iter()
        .map(|&c| c as f64)
        .collect();
    ExactScoreOracle::new(
        format!("yolo-count[{}]", video.config().object_class.name()),
        scores,
        YOLO_COST_PER_FRAME,
    )
}

/// Builds the counting oracle for a Visual Road mini-city video.
pub fn counting_oracle_visualroad(video: &VisualRoadVideo) -> ExactScoreOracle {
    let scores: Vec<f64> = video.counts().into_iter().map(|c| c as f64).collect();
    ExactScoreOracle::new("yolo-count[car]", scores, YOLO_COST_PER_FRAME)
}

/// Recommended quantization step for coverage scores (percent-of-frame
/// units; ~2 % buckets keep the grid small while separating crowded from
/// sparse frames).
pub const COVERAGE_QUANTIZATION_STEP: f64 = 2.0;

/// Builds a **coverage** oracle: the score of a frame is the total
/// bounding-box area of the detected objects, in units of 1 % of the frame
/// area (an empty frame scores 0; a frame half-covered scores ~50).
///
/// Coverage ranks frames differently from counting — a few large
/// (close-by) objects beat many distant ones — which makes
/// `(count, coverage)` a natural two-dimensional **skyline** query
/// (`everest-core::skyline`, the paper's §5 future work). Both scores are
/// derived from the *same* detector pass, so a skyline oracle confirming
/// both dimensions charges **one** YOLO invocation per frame.
pub fn coverage_oracle(video: &SyntheticVideo) -> ExactScoreOracle {
    use everest_video::VideoStore;
    let frame_area = (video.width() * video.height()) as f64;
    let scores: Vec<f64> = (0..video.num_frames())
        .map(|t| {
            let covered: f64 = video
                .objects_at(t)
                .iter()
                .map(|o| o.bbox.area() as f64)
                .sum();
            100.0 * covered / frame_area
        })
        .collect();
    ExactScoreOracle::new(
        format!("yolo-coverage[{}]", video.config().object_class.name()),
        scores,
        YOLO_COST_PER_FRAME,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::SceneConfig;
    use everest_video::visualroad::VisualRoadConfig;

    #[test]
    fn counting_scores_equal_ground_truth() {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 500,
                ..ArrivalConfig::default()
            },
            1,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 1, 30.0);
        let oracle = counting_oracle(&v);
        assert_eq!(oracle.num_frames(), 500);
        for t in (0..500).step_by(41) {
            assert_eq!(oracle.score(t), v.count_at(t) as f64);
        }
        assert_eq!(oracle.cost_per_frame(), YOLO_COST_PER_FRAME);
    }

    #[test]
    fn visualroad_counting_oracle() {
        let v = VisualRoadVideo::new(
            VisualRoadConfig {
                total_cars: 40,
                n_frames: 200,
                ..Default::default()
            },
            2,
        );
        let oracle = counting_oracle_visualroad(&v);
        for t in (0..200).step_by(13) {
            assert_eq!(oracle.score(t), v.count_at(t) as f64);
        }
    }

    #[test]
    fn coverage_tracks_object_area_not_count() {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 800,
                ..ArrivalConfig::default()
            },
            3,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 3, 30.0);
        let cover = coverage_oracle(&v);
        let count = counting_oracle(&v);
        // empty frames have zero coverage; occupied frames positive
        let mut corr_signs = 0usize;
        let mut occupied = 0usize;
        for t in 0..800 {
            if count.score(t) == 0.0 {
                assert_eq!(cover.score(t), 0.0, "frame {t}");
            } else {
                occupied += 1;
                assert!(cover.score(t) > 0.0, "frame {t}");
                corr_signs += 1;
            }
            assert!(cover.score(t) >= 0.0);
        }
        assert!(occupied > 0, "test video must contain objects");
        assert_eq!(corr_signs, occupied);
        // the two scores must NOT be a monotone transform of each other
        // (otherwise the skyline degenerates to Top-1): find two frames
        // where the orders disagree.
        let mut disagreement = false;
        'outer: for a in 0..800 {
            for b in (a + 1)..800 {
                if (count.score(a) > count.score(b) && cover.score(a) < cover.score(b))
                    || (count.score(a) < count.score(b) && cover.score(a) > cover.score(b))
                {
                    disagreement = true;
                    break 'outer;
                }
            }
        }
        assert!(
            disagreement,
            "count and coverage must rank differently somewhere"
        );
    }
}
