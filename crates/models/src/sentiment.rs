//! The visual-sentimentalizer oracle behind the thumbnail-generation use
//! case (§1, use case 2): happiness scores for vlog frames.
//!
//! The paper cites Sentribute \[63\] — a mid-level-attribute sentiment
//! model — as the oracle for "Top-10 happiest moments". Our substitute
//! reads the vlog simulator's latent mood and charges a simulated
//! deep-model cost per scored frame. Scores are continuous on a 0–10
//! scale, so queries supply a quantization step (§3.2).

use crate::oracle::ExactScoreOracle;
use everest_video::sentiment::SentimentVideo;
use everest_video::VideoStore;

/// Simulated cost of the sentimentalizer, seconds per frame.
pub const SENTIMENT_COST_PER_FRAME: f64 = 0.040;

/// Recommended quantization step for happiness scores (0–10 scale).
pub const HAPPINESS_QUANTIZATION_STEP: f64 = 0.25;

/// Builds the happiness oracle for a vlog video.
pub fn sentiment_oracle(video: &SentimentVideo) -> ExactScoreOracle {
    let scores: Vec<f64> = (0..video.num_frames())
        .map(|t| video.happiness(t))
        .collect();
    ExactScoreOracle::new("sentribute-happiness", scores, SENTIMENT_COST_PER_FRAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use everest_video::sentiment::SentimentConfig;

    #[test]
    fn oracle_reads_latent_mood() {
        let v = SentimentVideo::new(
            SentimentConfig {
                n_frames: 1_000,
                ..Default::default()
            },
            3,
        );
        let o = sentiment_oracle(&v);
        assert_eq!(o.num_frames(), 1_000);
        for t in (0..1_000).step_by(77) {
            assert_eq!(o.score(t), v.happiness(t));
        }
        assert_eq!(o.cost_per_frame(), SENTIMENT_COST_PER_FRAME);
    }

    #[test]
    fn scores_are_on_the_ten_scale() {
        let v = SentimentVideo::new(
            SentimentConfig {
                n_frames: 2_000,
                ..Default::default()
            },
            4,
        );
        let o = sentiment_oracle(&v);
        for t in 0..2_000 {
            assert!((0.0..=10.0).contains(&o.score(t)));
        }
    }
}
