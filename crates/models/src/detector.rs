//! Object detection over synthetic videos.
//!
//! The "detector" returns the renderer's ground-truth annotations — the
//! same move the paper makes when it declares the YOLOv3-materialised
//! relation to *be* the ground truth (§2). What a detector does **not**
//! return is object identity: recognising the same object across frames is
//! the tracker's job (see [`crate::tracker`]), exactly as in the paper's
//! data model.

use everest_video::dashcam::DashcamVideo;
use everest_video::frame::BBox;
use everest_video::scene::{ObjectClass, SyntheticVideo};
use everest_video::visualroad::VisualRoadVideo;

/// One detection in one frame: box + class, no identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    pub bbox: BBox,
    pub class: ObjectClass,
}

/// Frame-level object detection.
pub trait Detector: Send + Sync {
    /// Detections in frame `t`.
    fn detect(&self, t: usize) -> Vec<Detection>;

    /// Number of frames the detector can process.
    fn num_frames(&self) -> usize;

    /// Count of detections of a class in frame `t`.
    fn count_class(&self, t: usize, class: ObjectClass) -> usize {
        self.detect(t)
            .into_iter()
            .filter(|d| d.class == class)
            .count()
    }
}

/// The ground-truth ("oracle") detector over any annotated synthetic video.
pub struct GroundTruthDetector<V> {
    video: V,
}

impl<V> GroundTruthDetector<V> {
    pub fn new(video: V) -> Self {
        GroundTruthDetector { video }
    }

    pub fn video(&self) -> &V {
        &self.video
    }
}

impl Detector for GroundTruthDetector<SyntheticVideo> {
    fn detect(&self, t: usize) -> Vec<Detection> {
        self.video
            .objects_at(t)
            .into_iter()
            .map(|o| Detection {
                bbox: o.bbox,
                class: o.class,
            })
            .collect()
    }

    fn num_frames(&self) -> usize {
        use everest_video::VideoStore;
        self.video.num_frames()
    }
}

impl Detector for GroundTruthDetector<VisualRoadVideo> {
    fn detect(&self, t: usize) -> Vec<Detection> {
        self.video
            .objects_at(t)
            .into_iter()
            .map(|o| Detection {
                bbox: o.bbox,
                class: o.class,
            })
            .collect()
    }

    fn num_frames(&self) -> usize {
        use everest_video::VideoStore;
        self.video.num_frames()
    }
}

impl Detector for GroundTruthDetector<DashcamVideo> {
    fn detect(&self, t: usize) -> Vec<Detection> {
        self.video
            .objects_at(t)
            .into_iter()
            .map(|o| Detection {
                bbox: o.bbox,
                class: o.class,
            })
            .collect()
    }

    fn num_frames(&self) -> usize {
        use everest_video::VideoStore;
        self.video.num_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::SceneConfig;

    fn tiny_video() -> SyntheticVideo {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 300,
                ..ArrivalConfig::default()
            },
            3,
        );
        SyntheticVideo::new(SceneConfig::default(), tl, 3, 30.0)
    }

    #[test]
    fn detections_match_ground_truth_counts() {
        let v = tiny_video();
        let det = GroundTruthDetector::new(v);
        for t in (0..det.num_frames()).step_by(29) {
            let expected = det.video().count_at(t) as usize;
            assert_eq!(det.detect(t).len(), expected, "frame {t}");
        }
    }

    #[test]
    fn count_class_filters() {
        let v = tiny_video();
        let det = GroundTruthDetector::new(v);
        let t = (0..det.num_frames())
            .max_by_key(|&t| det.video().count_at(t))
            .unwrap();
        assert_eq!(det.count_class(t, ObjectClass::Car), det.detect(t).len());
        assert_eq!(det.count_class(t, ObjectClass::Boat), 0);
    }
}
