//! IoU-based object tracking: assigning stable `objectID`s across frames.
//!
//! §2 of the paper: "To recognize identical objects across frames so that
//! they share the same objectID, an object tracker is invoked, which takes
//! as input two polygons from two consecutive frames and returns the same
//! objectID if the two polygons represent the same object." This module is
//! that tracker: greedy best-IoU matching between consecutive frames with a
//! configurable match threshold and a miss tolerance (tracks survive a few
//! dropped frames before being retired).

use crate::detector::Detection;
use everest_video::frame::BBox;

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Minimum IoU between consecutive boxes to continue a track.
    pub iou_threshold: f32,
    /// Number of consecutive missed frames before a track is retired.
    pub max_misses: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            iou_threshold: 0.25,
            max_misses: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct Track {
    id: u64,
    last_bbox: BBox,
    misses: usize,
}

/// A streaming IoU tracker. Feed frames in order with
/// [`IouTracker::update`]; each call returns the track id assigned to every
/// detection of that frame.
#[derive(Debug, Clone)]
pub struct IouTracker {
    cfg: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl IouTracker {
    pub fn new(cfg: TrackerConfig) -> Self {
        IouTracker {
            cfg,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// Number of track ids ever created.
    pub fn tracks_created(&self) -> u64 {
        self.next_id
    }

    /// Currently live tracks.
    pub fn live_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Processes the detections of the next frame, returning one track id
    /// per detection (same order as the input).
    pub fn update(&mut self, detections: &[Detection]) -> Vec<u64> {
        // Build all candidate (track, detection, iou) pairs above threshold.
        let mut pairs: Vec<(usize, usize, f32)> = Vec::new();
        for (ti, track) in self.tracks.iter().enumerate() {
            for (di, det) in detections.iter().enumerate() {
                let iou = track.last_bbox.iou(&det.bbox);
                if iou >= self.cfg.iou_threshold {
                    pairs.push((ti, di, iou));
                }
            }
        }
        // Greedy matching by descending IoU.
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut track_matched = vec![false; self.tracks.len()];
        let mut det_assignment: Vec<Option<usize>> = vec![None; detections.len()];
        for (ti, di, _) in pairs {
            if !track_matched[ti] && det_assignment[di].is_none() {
                track_matched[ti] = true;
                det_assignment[di] = Some(ti);
            }
        }

        // Update matched tracks, create new ones for unmatched detections.
        let mut ids = Vec::with_capacity(detections.len());
        let mut new_tracks: Vec<Track> = Vec::new();
        for (di, det) in detections.iter().enumerate() {
            match det_assignment[di] {
                Some(ti) => {
                    self.tracks[ti].last_bbox = det.bbox;
                    self.tracks[ti].misses = 0;
                    ids.push(self.tracks[ti].id);
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    new_tracks.push(Track {
                        id,
                        last_bbox: det.bbox,
                        misses: 0,
                    });
                    ids.push(id);
                }
            }
        }

        // Age out unmatched tracks.
        let max_misses = self.cfg.max_misses;
        let mut keep = Vec::with_capacity(self.tracks.len() + new_tracks.len());
        for (ti, mut track) in std::mem::take(&mut self.tracks).into_iter().enumerate() {
            if track_matched[ti] {
                keep.push(track);
            } else {
                track.misses += 1;
                if track.misses <= max_misses {
                    keep.push(track);
                }
            }
        }
        keep.extend(new_tracks);
        self.tracks = keep;
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_video::scene::ObjectClass;

    fn det(x: f32, y: f32) -> Detection {
        Detection {
            bbox: BBox::new(x, y, 10.0, 10.0),
            class: ObjectClass::Car,
        }
    }

    #[test]
    fn single_object_keeps_its_id() {
        let mut tr = IouTracker::new(TrackerConfig::default());
        let mut last_id = None;
        for step in 0..20 {
            let ids = tr.update(&[det(step as f32 * 1.5, 0.0)]); // moves slowly
            assert_eq!(ids.len(), 1);
            if let Some(prev) = last_id {
                assert_eq!(ids[0], prev, "id changed at step {step}");
            }
            last_id = Some(ids[0]);
        }
        assert_eq!(tr.tracks_created(), 1);
    }

    #[test]
    fn disjoint_objects_get_distinct_ids() {
        let mut tr = IouTracker::new(TrackerConfig::default());
        let ids = tr.update(&[det(0.0, 0.0), det(100.0, 100.0)]);
        assert_ne!(ids[0], ids[1]);
        let ids2 = tr.update(&[det(1.0, 0.0), det(101.0, 100.0)]);
        assert_eq!(ids, ids2);
    }

    #[test]
    fn fast_jump_breaks_the_track() {
        let mut tr = IouTracker::new(TrackerConfig::default());
        let a = tr.update(&[det(0.0, 0.0)]);
        let b = tr.update(&[det(500.0, 500.0)]); // no overlap at all
        assert_ne!(a[0], b[0]);
        assert_eq!(tr.tracks_created(), 2);
    }

    #[test]
    fn track_survives_short_occlusion() {
        let mut tr = IouTracker::new(TrackerConfig {
            iou_threshold: 0.2,
            max_misses: 3,
        });
        let a = tr.update(&[det(0.0, 0.0)]);
        let _ = tr.update(&[]); // occluded for 2 frames
        let _ = tr.update(&[]);
        let b = tr.update(&[det(2.0, 0.0)]);
        assert_eq!(a[0], b[0], "track should survive {} misses", 2);
    }

    #[test]
    fn track_retires_after_max_misses() {
        let mut tr = IouTracker::new(TrackerConfig {
            iou_threshold: 0.2,
            max_misses: 1,
        });
        let a = tr.update(&[det(0.0, 0.0)]);
        let _ = tr.update(&[]);
        let _ = tr.update(&[]); // second miss retires it
        let b = tr.update(&[det(0.0, 0.0)]);
        assert_ne!(a[0], b[0]);
        assert_eq!(tr.live_tracks(), 1);
    }

    #[test]
    fn greedy_matching_prefers_higher_iou() {
        let mut tr = IouTracker::new(TrackerConfig {
            iou_threshold: 0.05,
            max_misses: 0,
        });
        // two tracks side by side
        let first = tr.update(&[det(0.0, 0.0), det(8.0, 0.0)]);
        // detections shifted right: each should match the nearer predecessor
        let second = tr.update(&[det(1.0, 0.0), det(9.0, 0.0)]);
        assert_eq!(first, second);
    }

    #[test]
    fn crossing_ground_truth_tracks_on_synthetic_video() {
        use crate::detector::{Detector, GroundTruthDetector};
        use everest_video::arrival::{ArrivalConfig, Timeline};
        use everest_video::scene::{SceneConfig, SyntheticVideo};

        // Use a sparse scene so tracking is unambiguous.
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 400,
                base_intensity: 1.0,
                mean_lifetime: 120.0,
                burst_rate_per_10k: 0.0,
                ..ArrivalConfig::default()
            },
            11,
        );
        let video = SyntheticVideo::new(
            SceneConfig {
                width: 64,
                height: 64,
                ..SceneConfig::default()
            },
            tl,
            11,
            30.0,
        );
        let detector = GroundTruthDetector::new(video);
        let mut tracker = IouTracker::new(TrackerConfig::default());
        // For every frame, remember (gt id → track id); a ground-truth object
        // should map to few distinct track ids (ideally 1).
        let mut mapping: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for t in 0..detector.num_frames() {
            let gt = detector.video().objects_at(t);
            let dets: Vec<Detection> = gt
                .iter()
                .map(|o| Detection {
                    bbox: o.bbox,
                    class: o.class,
                })
                .collect();
            let ids = tracker.update(&dets);
            for (o, &tid) in gt.iter().zip(ids.iter()) {
                mapping.entry(o.id).or_default().insert(tid);
            }
        }
        let fragmented = mapping.values().filter(|s| s.len() > 2).count();
        assert!(
            fragmented * 5 <= mapping.len().max(1),
            "too many fragmented tracks: {fragmented}/{}",
            mapping.len()
        );
    }
}
