//! The video relation of Table 2: what the scan-and-test baseline pays to
//! materialise — detector + tracker over every frame.
//!
//! Everest's entire purpose is *avoiding* this full materialisation, but
//! the relation is the semantic foundation: oracle counting scores are
//! per-timestamp tuple counts of this relation.
//!
//! Run with: `cargo run --release --example video_relation`

use everest::models::relation::VideoRelation;
use everest::models::tracker::TrackerConfig;
use everest::models::{Detector, GroundTruthDetector};
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{ObjectClass, SceneConfig, SyntheticVideo};

fn main() {
    // A 40-second clip at 64×64 so boxes are comfortably trackable.
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames: 1_200,
            base_intensity: 1.8,
            burst_rate_per_10k: 0.0,
            mean_lifetime: 150.0,
            ..ArrivalConfig::default()
        },
        5,
    );
    let video = SyntheticVideo::new(
        SceneConfig {
            width: 64,
            height: 64,
            ..SceneConfig::default()
        },
        timeline,
        5,
        30.0,
    );
    let detector = GroundTruthDetector::new(video);

    println!("Materialising the video relation (detector + IoU tracker)…");
    let relation = VideoRelation::materialize(&detector, TrackerConfig::default());

    println!("\nFirst rows of the relation (Table 2 schema):");
    println!("  ts      class  objectID  polygon (x, y, w, h)");
    for row in relation.rows().iter().take(8) {
        println!(
            "  {:<6}  {:<6} {:<9} ({:>5.1}, {:>5.1}, {:>4.1}, {:>4.1})",
            row.ts,
            row.class.name(),
            row.object_id,
            row.polygon.x,
            row.polygon.y,
            row.polygon.w,
            row.polygon.h
        );
    }

    let frames = detector.num_frames();
    println!(
        "\nrelation size: {} tuples over {} frames",
        relation.len(),
        frames
    );
    println!("distinct tracked objects: {}", relation.distinct_objects());
    println!(
        "ground-truth objects:     {}",
        detector.video().timeline().num_objects()
    );

    // The per-frame counting score is a per-timestamp aggregate.
    let busiest = (0..frames)
        .max_by_key(|&t| relation.count_at(t, ObjectClass::Car))
        .unwrap();
    println!(
        "busiest frame: {} with {} cars (oracle ground truth: {})",
        busiest,
        relation.count_at(busiest, ObjectClass::Car),
        detector.video().count_at(busiest)
    );

    // One object's trajectory — the substrate MIRIS-style track queries use.
    if let Some(row) = relation.rows().first() {
        let traj = relation.trajectory(row.object_id);
        println!(
            "object {} tracked over {} frames ({} → {})",
            row.object_id,
            traj.len(),
            traj.first().unwrap().ts,
            traj.last().unwrap().ts
        );
    }
}
