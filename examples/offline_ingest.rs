//! Offline ingestion example — Phase 1 at ingest time, queries later.
//!
//! ```text
//! cargo run --release --example offline_ingest
//! ```
//!
//! §4.2 notes that "Phase 1 can be done offline during data ingestion
//! (e.g. Focus) or even at the edge where the videos are produced". This
//! example plays both roles:
//!
//! 1. **Ingest process** — builds a video, runs Phase 1 (CMDN training +
//!    populating `D0`), and saves the [`IngestIndex`] to disk;
//! 2. **Query process** — loads the index back (as a separate process
//!    would), and serves a Top-K query *without* re-running Phase 1; only
//!    Phase 2's oracle confirmations run at query time.
//!
//! The two answers — fresh and restored — are asserted identical, and the
//! printed timings show what ingestion buys: query-time wall clock drops
//! to Phase 2 alone, while the *simulated* end-to-end cost stays honest
//! (the index carries Phase 1's clock charges with it).

use everest::core::ingest::IngestIndex;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::core::prelude::*;
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};
use std::time::Instant;

fn main() {
    let n_frames = 3_000;
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames,
            ..ArrivalConfig::default()
        },
        2024,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), timeline, 2024, 30.0);
    let oracle = InstrumentedOracle::new(counting_oracle(&video));

    // ---- ingest process ----
    let phase1 = Phase1Config {
        sample_frac: 0.05,
        sample_cap: 400,
        sample_min: 200,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        conv_channels: vec![6, 12],
        quant_step: 1.0,
        seed: 7,
        ..Phase1Config::default()
    };
    // lint:allow(det-wallclock): demo prints wall times for the reader;
    // the ingest output itself is seed-deterministic.
    let t0 = Instant::now();
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let ingest_wall = t0.elapsed();

    let path = std::env::temp_dir().join("everest-demo.index.json");
    let index = IngestIndex::from_prepared("demo-traffic", &prepared);
    index.save(&path).expect("save index");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "ingested {} frames in {:.1}s wall → {} ({:.1} KiB)",
        n_frames,
        ingest_wall.as_secs_f64(),
        path.display(),
        bytes as f64 / 1024.0
    );

    // ---- query process (would be a different process / machine) ----
    // lint:allow(det-wallclock): demo prints wall times for the reader.
    let t1 = Instant::now();
    let restored = IngestIndex::load(&path)
        .expect("load index")
        .into_prepared()
        .expect("valid index");
    let load_wall = t1.elapsed();

    let cfg = CleanerConfig {
        k: 10,
        thres: 0.9,
        ..Default::default()
    };
    // lint:allow(det-wallclock): demo prints wall times for the reader.
    let t2 = Instant::now();
    let answer = restored.query_topk(&oracle, 10, 0.9, &cfg);
    let query_wall = t2.elapsed();

    println!(
        "query over the restored index: load {:.2}s + phase-2 {:.2}s wall \
         (ingest took {:.1}s — paid once, amortised over every later query)",
        load_wall.as_secs_f64(),
        query_wall.as_secs_f64(),
        ingest_wall.as_secs_f64(),
    );
    println!(
        "answer: {} frames, confidence {:.4}, cleaned {} items, sim {:.1}s end-to-end",
        answer.items.len(),
        answer.confidence,
        answer.cleaned,
        answer.sim_seconds(),
    );

    // The restored pipeline must agree with the fresh one exactly.
    let fresh = prepared.query_topk(&oracle, 10, 0.9, &cfg);
    assert_eq!(
        fresh.frames(),
        answer.frames(),
        "restored index changed the answer"
    );
    assert_eq!(fresh.confidence, answer.confidence);
    println!("fresh-vs-restored agreement: identical answers ✓");

    std::fs::remove_file(&path).ok();
}
