//! Probabilistic skyline example — the paper's §5 future work, running on
//! the full pipeline.
//!
//! ```text
//! cargo run --release --example skyline_pareto
//! ```
//!
//! Query: *"find the frames that are Pareto-optimal in (object count,
//! object coverage)"* — the busiest moments **and** the moments with the
//! biggest/closest objects, plus every non-dominated trade-off between
//! them. Neither Top-K alone captures this: a frame with 3 huge vehicles
//! and a frame with 11 distant ones can both be skyline members.
//!
//! Pipeline:
//!  1. Phase 1 twice on the same video — one CMDN per scoring function
//!     (count and coverage share the difference detector, so the retained
//!     frames align 1:1);
//!  2. zip the two uncertain relations into a `VectorRelation`;
//!  3. oracle-in-the-loop skyline cleaning until
//!     `Pr(R̂ = skyline) ≥ 0.95` — confirming a frame runs the detector
//!     **once** and yields both dimensions.

use everest::core::phase1::Phase1Config;
use everest::core::skyline::{run_skyline_cleaner, zip_relations, SkylineConfig, SkylineOracle};
use everest::models::{counting_oracle, coverage_oracle, Oracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};
use everest_core::pipeline::Everest;
use everest_core::xtuple::ItemId;

/// Confirms both dimensions with one simulated detector pass per frame.
struct DualScoreOracle<'a> {
    count: &'a everest::models::ExactScoreOracle,
    coverage: &'a everest::models::ExactScoreOracle,
    retained: &'a [usize],
    steps: (f64, f64),
    max_buckets: (usize, usize),
    frames_scored: usize,
}

impl SkylineOracle for DualScoreOracle<'_> {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>> {
        let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
        // One detector pass yields the object list; count and coverage are
        // both derived from it, so charge the frames once.
        let counts = self.count.score_batch(&frames);
        let covers = self.coverage.score_batch(&frames);
        self.frames_scored += frames.len();
        counts
            .iter()
            .zip(&covers)
            .map(|(&c, &a)| {
                vec![
                    ((c / self.steps.0).round().max(0.0) as usize).min(self.max_buckets.0) as u32,
                    ((a / self.steps.1).round().max(0.0) as usize).min(self.max_buckets.1) as u32,
                ]
            })
            .collect()
    }
}

fn main() {
    // A moderately busy fixed-camera traffic scene with known ground truth.
    let n_frames = 4_000;
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames,
            base_intensity: 2.0,
            ..ArrivalConfig::default()
        },
        1234,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), timeline, 1234, 30.0);
    let count = counting_oracle(&video);
    let coverage = coverage_oracle(&video);

    // Skylines are harder on the proxy than Top-K: Eq. 2's product only
    // converges when most items have *exactly zero* mass above the
    // certain staircase (the 3σ truncation of §3.2), and here escape can
    // happen on either dimension. A tighter CMDN (more samples/epochs)
    // is what buys that — see DESIGN.md's skyline notes.
    let phase1 = |step: f64, seed: u64| Phase1Config {
        sample_frac: 0.1,
        sample_cap: 1_000,
        sample_min: 200,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16],
        quant_step: step,
        seed,
        ..Phase1Config::default()
    };

    println!("Phase 1 ×2: one CMDN per scoring function…");
    let prep_count = Everest::prepare(&video, &count, &phase1(1.0, 7));
    let prep_cover = Everest::prepare(&video, &coverage, &phase1(2.0, 7));
    assert_eq!(
        prep_count.phase1.segments.retained(),
        prep_cover.phase1.segments.retained(),
        "same video + same difference detector → same retained frames"
    );

    let mut rel = zip_relations(&[&prep_count.phase1.relation, &prep_cover.phase1.relation]);
    let retained = prep_count.phase1.segments.retained();
    println!(
        "zipped VectorRelation: {} items ({} already certain from sampling)",
        rel.len(),
        rel.num_certain()
    );

    let mut oracle = DualScoreOracle {
        count: &count,
        coverage: &coverage,
        retained,
        steps: (
            prep_count.phase1.relation.step(),
            prep_cover.phase1.relation.step(),
        ),
        max_buckets: (
            prep_count.phase1.relation.max_bucket(),
            prep_cover.phase1.relation.max_bucket(),
        ),
        frames_scored: 0,
    };

    let outcome = run_skyline_cleaner(
        &mut rel,
        &mut oracle,
        &SkylineConfig {
            thres: 0.95,
            batch_size: 8,
            max_cleanings: None,
        },
    );

    println!(
        "\nskyline query: converged={} confidence={:.4} iterations={} cleaned={} \
         ({:.2}% of items, {} oracle frames)",
        outcome.converged,
        outcome.confidence,
        outcome.iterations,
        outcome.cleaned,
        100.0 * outcome.cleaned as f64 / rel.len() as f64,
        oracle.frames_scored,
    );

    let mut rows: Vec<(usize, f64, f64)> = outcome
        .skyline
        .iter()
        .map(|&id| {
            let frame = retained[id];
            (frame, count.score(frame), coverage.score(frame))
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("\nPareto-optimal frames (count vs coverage %):");
    println!("frame    t+ (s)   count   coverage");
    for (frame, c, a) in &rows {
        println!("{frame:<8} {:<8.1} {c:<7} {a:.1}", *frame as f64 / 30.0);
    }

    // Sanity: the skyline under the exact scores matches.
    let scan_cost = count.num_frames() as f64 * count.cost_per_frame();
    let sky_cost = oracle.frames_scored as f64 * count.cost_per_frame();
    println!(
        "\nsimulated oracle time: skyline {:.1}s vs scan-and-test {:.1}s ({:.1}x)",
        sky_cost,
        scan_cost,
        scan_cost / sky_cost.max(1e-9),
    );
}
