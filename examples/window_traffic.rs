//! Top-K windows (§3.4): an urban planner asks for the Top-5 five-second
//! windows with the highest *average* number of cars — multi-frame
//! analytics that selection-only systems cannot express.
//!
//! Run with: `cargo run --release --example window_traffic`

use everest::core::cleaner::CleanerConfig;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::core::window::exact_window_scores;
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};

fn main() {
    let n_frames = 9_000; // 5 minutes at 30 fps
    let window_len = 150; // 5-second tumbling windows
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames,
            base_intensity: 3.0,
            burst_rate_per_10k: 8.0,
            burst_boost: 3.0,
            ..ArrivalConfig::default()
        },
        99,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), timeline, 99, 30.0);
    let oracle = InstrumentedOracle::new(counting_oracle(&video));

    let phase1 = Phase1Config {
        sample_frac: 0.05,
        sample_cap: 450,
        grid: HyperGrid {
            gaussians: vec![3, 5],
            hidden: vec![16],
        },
        train: TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        ..Phase1Config::default()
    };
    println!(
        "Building the window relation over {} windows…",
        n_frames / window_len
    );
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let report = prepared.query_topk_windows(
        &oracle,
        5,
        0.9,
        window_len,
        0.1, // sample 10% of each window's frames for confirmation (§3.4)
        &CleanerConfig::default(),
    );

    let exact = exact_window_scores(oracle.inner().all_scores(), &prepared.windows(window_len));
    println!("\nTop-5 five-second windows by average car count:");
    println!("  rank     window      avg cars (sampled)   avg cars (exact)");
    for (rank, item) in report.items.iter().enumerate() {
        let (s, e) = item.range;
        println!(
            "  #{:<3} [{:>6.1}s, {:>6.1}s)   {:>8.2}          {:>8.2}",
            rank + 1,
            s as f64 / 30.0,
            e as f64 / 30.0,
            item.score,
            exact[s / window_len]
        );
    }
    println!(
        "\nconfidence {:.3}; cleaned {} of {} windows; {} oracle frame invocations",
        report.confidence,
        report.cleaned,
        report.total_items,
        oracle.frames_scored()
    );
}
