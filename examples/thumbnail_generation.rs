//! Thumbnail generation (§1, use case 2): a social platform picks the
//! Top-10 happiest moments of a vlog as candidate thumbnails, scored by a
//! simulated visual sentimentalizer.
//!
//! Run with: `cargo run --release --example thumbnail_generation`

use everest::core::cleaner::CleanerConfig;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::models::sentiment::{sentiment_oracle, HAPPINESS_QUANTIZATION_STEP};
use everest::models::{InstrumentedOracle, Oracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::sentiment::{SentimentConfig, SentimentVideo};

fn main() {
    let video = SentimentVideo::new(
        SentimentConfig {
            n_frames: 6_000,
            ..SentimentConfig::default()
        },
        77,
    );
    let oracle = InstrumentedOracle::new(sentiment_oracle(&video));

    println!("Scanning a {}-frame vlog for thumbnail moments…", 6_000);
    let phase1 = Phase1Config {
        sample_frac: 0.06,
        sample_cap: 360,
        grid: HyperGrid {
            gaussians: vec![3, 5],
            hidden: vec![16],
        },
        train: TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        quant_step: HAPPINESS_QUANTIZATION_STEP,
        ..Phase1Config::default()
    };
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let report = prepared.query_topk(&oracle, 10, 0.9, &CleanerConfig::default());

    println!("\nTop-10 happiest moments (thumbnail candidates, thres = 0.9):");
    println!("  rank    time   happiness");
    for (rank, item) in report.items.iter().enumerate() {
        println!(
            "  #{:<3} {:>6.1}s   {:>6.2} / 10",
            rank + 1,
            item.frame as f64 / 30.0,
            item.score
        );
    }
    let scan = oracle.num_frames() as f64 * oracle.cost_per_frame();
    println!(
        "\nconfidence {:.3}; sentimentalizer ran on {} of {} frames; {:.1}× faster than scanning",
        report.confidence,
        oracle.frames_scored(),
        oracle.num_frames(),
        scan / report.sim_seconds()
    );
}
