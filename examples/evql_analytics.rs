//! EVQL example: the paper's three §1 use cases as one-line queries.
//!
//! ```text
//! cargo run --release --example evql_analytics
//! ```
//!
//! Property valuation, thumbnail generation and fleet management — the
//! motivating applications of the paper's introduction — each become a
//! single declarative statement. The session caches Phase-1 work, so the
//! follow-up query on `Archie` (same dataset, different K and confidence)
//! skips CMDN training entirely.

use everest::evql::{Output, Session};

fn main() {
    let mut session = Session::new();
    // Shrink the catalog so the demo finishes in about a minute on CPU.
    session.settings.scale = 400;

    let statements = [
        // Use case 1 — property valuation: peak pedestrian/vehicle moments.
        "SELECT TOP 5 FRAMES FROM Archie WITH CONFIDENCE 0.9, SEED 42",
        // Same dataset, bigger K, stricter guarantee: Phase 1 is cached.
        "SELECT TOP 10 FRAMES FROM Archie WITH CONFIDENCE 0.95, SEED 42",
        // Use case 2 — thumbnail generation: the happiest vlog moments.
        "SELECT TOP 5 FRAMES FROM Vlog SCORE sentiment() WITH SEED 42",
        // Use case 3 — fleet management: the worst tailgating moments.
        "SELECT TOP 5 FRAMES FROM Dashcam-California SCORE tailgating() WITH SEED 42",
        // §3.4: the busiest 5-second clips (150 frames at 30 fps).
        "SELECT TOP 3 WINDOWS OF 150 FRAMES FROM Archie WITH SAMPLE 0.2, SEED 42",
        // §4 comparison: the same query on a baseline engine.
        "SELECT TOP 5 FRAMES FROM Archie USING noscope WITH SEED 42",
        // Live-feed mode: the same Top-K maintained continuously, one
        // answer per emit point (Phase 1 is cached from the queries above).
        "SELECT TOP 5 FRAMES FROM Archie EVERY 300 FRAMES EMIT WITH SEED 42, BUDGET 25",
        // §5 future work: Pareto-optimal frames in (count, coverage).
        // Reuses Archie's cached count-dimension Phase 1 from above.
        "SELECT SKYLINE FROM Archie WITH CONFIDENCE 0.8, SEED 42",
    ];

    for stmt in statements {
        println!("evql> {stmt}");
        match session.execute(stmt) {
            Ok(Output::Rows(answer)) => println!("{}", answer.render()),
            Ok(Output::Skyline(answer)) => println!("{}", answer.render()),
            Ok(Output::Stream(answer)) => println!("{}", answer.render()),
            Ok(Output::Message(m)) => println!("{m}"),
            Err(e) => {
                eprintln!("{}", e.render(stmt));
                std::process::exit(1);
            }
        }
    }

    println!(
        "cached Phase-1 preparations at exit: {}",
        session.cached_preparations()
    );
}
