//! Property valuation (§1, use case 1): find the Top-5 moments with the
//! highest pedestrian counts on a shop-front camera — the peak foot
//! traffic that drives shop valuation.
//!
//! Run with: `cargo run --release --example property_valuation`

use everest::core::baselines::scan_and_test;
use everest::core::cleaner::CleanerConfig;
use everest::core::metrics::{evaluate_topk, GroundTruth};
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::ArrivalConfig;
use everest::video::datasets::DatasetSpec;
use everest::video::datasets::SceneStyle;
use everest::video::scene::ObjectClass;

fn main() {
    // A pedestrian-street camera in the style of Daxi-old-street (Table 7),
    // shortened so the example runs in seconds.
    let spec = DatasetSpec {
        name: "shopfront",
        object_class: ObjectClass::Person,
        paper_resolution: (1920, 1080),
        fps: 30.0,
        paper_frames_k: 8_640,
        paper_hours: 80.0,
        scale: 1_600,
        n_frames: 5_400,
        style: SceneStyle::MovingCamera,
        arrival: ArrivalConfig {
            n_frames: 5_400,
            base_intensity: 4.0,
            diurnal_amplitude: 0.6,
            diurnal_periods: 3.0, // three "days" of footage
            burst_rate_per_10k: 6.0,
            burst_boost: 2.5,
            burst_len: (60, 240),
            mean_lifetime: 120.0,
            min_lifetime: 12,
        },
        render_size: (32, 32),
    };
    let video = spec.build(7);
    let oracle = InstrumentedOracle::new(counting_oracle(&video));

    println!("Scanning {} frames of shop-front footage…", spec.n_frames);
    let phase1 = Phase1Config {
        sample_frac: 0.05,
        sample_cap: 400,
        grid: HyperGrid {
            gaussians: vec![3, 5],
            hidden: vec![16],
        },
        train: TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        ..Phase1Config::default()
    };
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let report = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());

    println!("\nTop-5 peak foot-traffic moments (guaranteed ≥ 0.9 exact):");
    for (rank, item) in report.items.iter().enumerate() {
        let minute = item.frame as f64 / video.config().width as f64; // illustrative
        let _ = minute;
        let t = item.frame as f64 / 30.0;
        println!(
            "  #{:<2} t = {:>7.1}s  (frame {:>6})  {} pedestrians",
            rank + 1,
            t,
            item.frame,
            item.score
        );
    }

    // How did we do against the exact answer, and at what cost?
    let scan = scan_and_test(oracle.inner(), 5);
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    let quality = evaluate_topk(&truth, &report.frames(), 5);
    println!("\nprecision vs exact Top-5: {:.2}", quality.precision);
    println!(
        "simulated latency: Everest {:.1}s vs scan-and-test {:.1}s  ({:.1}× speedup)",
        report.sim_seconds(),
        scan.sim_seconds,
        scan.sim_seconds / report.sim_seconds()
    );
    println!(
        "oracle frames: {} of {} ({:.2}%)",
        oracle.frames_scored(),
        spec.n_frames,
        100.0 * oracle.frames_scored() as f64 / spec.n_frames as f64
    );
}
