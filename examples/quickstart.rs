//! Quickstart: the paper's running example (Tables 1a, 4, 5) followed by a
//! real end-to-end Top-K query on a small synthetic traffic video.
//!
//! Run with: `cargo run --release --example quickstart`

use everest::core::cleaner::CleanerConfig;
use everest::core::dist::DiscreteDist;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::core::pws::topk_confidence_bruteforce;
use everest::core::topkprob::{topk_prob, JointCdf};
use everest::core::xtuple::UncertainRelation;
use everest::models::{counting_oracle, InstrumentedOracle, Oracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};

fn main() {
    paper_running_example();
    end_to_end_query();
}

/// Reproduces §3's worked example: the uncertain relation of Table 1a, the
/// possible worlds of Table 4, and the certain-result condition via
/// Table 5.
fn paper_running_example() {
    println!("=== The paper's running example (Tables 1a, 4, 5) ===");
    // Table 1a: three frames with car-count distributions over {0, 1, 2}.
    let mut rel = UncertainRelation::new(1.0, 2);
    rel.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01])); // f1
    rel.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09])); // f2
    rel.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36])); // f3

    // Table 4: two possible worlds and their probabilities.
    let w1 = 0.78 * 0.49 * 0.16;
    let w2 = 0.21 * 0.49 * 0.16;
    println!("Pr(W1 = (0,0,0)) = {w1:.4}   Pr(W2 = (1,0,0)) = {w2:.4}");

    // Top-1 = {f3} has confidence 0.85 under Eq. 1 …
    let before = topk_confidence_bruteforce(&rel, &[2], 1).expect("27 worlds are enumerable");
    println!("Pr({{f3}} is Top-1) before cleaning = {before:.4} (paper: 0.85)");

    // … but the certain-result condition requires confirming f3 first.
    // Table 5: Oracle(f3) returns 0 and the confidence drops to 0.38.
    let mut h = JointCdf::build(&rel);
    let old = rel.clean(2, 0);
    h.remove(&old);
    let after = topk_prob(&h, 0);
    println!("Pr({{f3}} is Top-1) after Oracle(f3)=0 = {after:.4} (paper: 0.38)");
    println!();
}

/// A real query: Top-5 busiest traffic moments with a 0.9 probabilistic
/// guarantee, on a 2 000-frame synthetic junction video.
fn end_to_end_query() {
    println!("=== End-to-end Top-5 query (thres = 0.9) ===");
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames: 2_000,
            ..ArrivalConfig::default()
        },
        42,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), timeline, 42, 30.0);
    let oracle = InstrumentedOracle::new(counting_oracle(&video));

    // A deliberately *starved* Phase-1 recipe so the demo finishes in
    // seconds: 200 labels, 10 epochs, a 3×16 grid. The price is a
    // miscalibrated proxy that cleans far more frames than the paper's
    // ~1% — see the calibrated recipe below.
    let phase1 = Phase1Config {
        sample_frac: 0.08,
        sample_cap: 200,
        sample_min: 32,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16],
        ..Phase1Config::default()
    };
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let report = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());

    println!("confidence  = {:.4} (≥ 0.9 guaranteed)", report.confidence);
    println!(
        "cleaned     = {} of {} unique frames ({:.2}%)",
        report.cleaned,
        report.total_items,
        100.0 * report.pct_cleaned()
    );
    println!("iterations  = {}", report.iterations);
    println!(
        "sim latency = {:.1}s  (scan-and-test would be {:.1}s)",
        report.sim_seconds(),
        video_scan_cost(&oracle)
    );
    println!("Top-5 moments (frame, cars):");
    for (rank, item) in report.items.iter().enumerate() {
        println!(
            "  #{:<2} frame {:>5}  score {}",
            rank + 1,
            item.frame,
            item.score
        );
    }
    println!();
    println!("note: this demo trains a deliberately starved CMDN for speed,");
    println!("so the cleaning fraction is far above the paper's ~1%. The");
    println!("calibrated recipe (sample_frac 0.25, cap 500, 5x24 grid,");
    println!("25 epochs, conv 8/16/32) reaches the paper's regime on this");
    println!("same video -- pinned in tests/cleaning_fraction.rs.");
}

fn video_scan_cost(oracle: &InstrumentedOracle<everest::models::ExactScoreOracle>) -> f64 {
    oracle.num_frames() as f64 * oracle.cost_per_frame()
}
