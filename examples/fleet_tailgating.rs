//! Fleet management (§1, use case 3 / Figure 9): find the Top-10 most
//! dangerous tailgating moments in dashcam footage, ranked by a simulated
//! monocular depth estimator.
//!
//! Continuous scores exercise the user-supplied quantization step of §3.2.
//!
//! Run with: `cargo run --release --example fleet_tailgating`

use everest::core::cleaner::CleanerConfig;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::models::depth::{depth_oracle, TAILGATING_QUANTIZATION_STEP};
use everest::models::{InstrumentedOracle, Oracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::dashcam::{DashcamConfig, DashcamVideo};

fn main() {
    let video = DashcamVideo::new(
        DashcamConfig {
            n_frames: 6_000,
            ..DashcamConfig::default()
        },
        2_024,
    );
    let oracle = InstrumentedOracle::new(depth_oracle(&video));

    println!("Analyzing {} dashcam frames for tailgating…", 6_000);
    let phase1 = Phase1Config {
        sample_frac: 0.06,
        sample_cap: 360,
        grid: HyperGrid {
            gaussians: vec![3, 5],
            hidden: vec![16],
        },
        train: TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        // tailgating degree is continuous: the UDF supplies the step
        quant_step: TAILGATING_QUANTIZATION_STEP,
        ..Phase1Config::default()
    };
    let prepared = Everest::prepare(&video, &oracle, &phase1);
    let report = prepared.query_topk(&oracle, 10, 0.9, &CleanerConfig::default());

    println!("\nTop-10 most dangerous tailgating moments (thres = 0.9):");
    println!("  rank    time  tailgating  lead distance");
    for (rank, item) in report.items.iter().enumerate() {
        let t = item.frame as f64 / 30.0;
        let d = video.lead_distance(item.frame);
        println!(
            "  #{:<3} {:>6.1}s  {:>8.1}    {:>6.1} m",
            rank + 1,
            t,
            item.score,
            d
        );
    }
    println!(
        "\nconfidence {:.3}; cleaned {:.2}% of frames; {} oracle invocations",
        report.confidence,
        100.0 * report.pct_cleaned(),
        oracle.frames_scored()
    );
    let scan = video_scan(&oracle);
    println!(
        "simulated latency {:.1}s vs scan-and-test {:.1}s ({:.1}×)",
        report.sim_seconds(),
        scan,
        scan / report.sim_seconds()
    );
}

fn video_scan(o: &InstrumentedOracle<everest::models::ExactScoreOracle>) -> f64 {
    o.num_frames() as f64 * o.cost_per_frame()
}
