//! Property tests for the alternative uncertain Top-K semantics (§2) —
//! cross-checking the fast expected-ranks computation against world
//! enumeration and the structural relationships between the semantics.

use everest::core::dist::DiscreteDist;
use everest::core::semantics::{
    expected_rank_topk, expected_ranks, probabilistic_threshold_topk, pws_expected_ranks,
    topk_membership, u_kranks, u_topk,
};
use everest::core::xtuple::UncertainRelation;
use proptest::prelude::*;

const MAX_B: usize = 3;

fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_B + 1).prop_filter_map("positive mass", |masses| {
        if masses.iter().sum::<f64>() > 1e-9 {
            Some(DiscreteDist::from_masses(&masses))
        } else {
            None
        }
    })
}

fn arb_relation() -> impl Strategy<Value = UncertainRelation> {
    (
        proptest::collection::vec(arb_dist(), 1..5),
        proptest::collection::vec(0u32..=MAX_B as u32, 0..3),
    )
        .prop_map(|(dists, certains)| {
            let mut rel = UncertainRelation::new(1.0, MAX_B);
            for d in dists {
                rel.push_uncertain(d);
            }
            for b in certains {
                rel.push_certain(b);
            }
            rel
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(n·m) expected-ranks computation equals brute-force world
    /// enumeration (linearity of expectation, verified empirically).
    #[test]
    fn expected_ranks_equal_world_enumeration(rel in arb_relation()) {
        let fast = expected_ranks(&rel);
        let brute = pws_expected_ranks(&rel);
        for (f, (a, b)) in fast.iter().zip(&brute).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "item {f}: {a} vs {b}");
        }
    }

    /// Σ_f E[rank(f)] = C(n,2): every unordered pair contributes exactly 1
    /// in every world under the midpoint tie convention.
    #[test]
    fn expected_ranks_sum_to_pair_count(rel in arb_relation()) {
        let n = rel.len() as f64;
        let total: f64 = expected_ranks(&rel).iter().sum();
        prop_assert!((total - n * (n - 1.0) / 2.0).abs() < 1e-9, "Σ = {total}, n = {n}");
    }

    /// Expected ranks live in [0, n−1].
    #[test]
    fn expected_ranks_are_bounded(rel in arb_relation()) {
        let n = rel.len() as f64;
        for (f, r) in expected_ranks(&rel).iter().enumerate() {
            prop_assert!((-1e-12..=n - 1.0 + 1e-12).contains(r), "item {f}: rank {r}");
        }
    }

    /// Top-K membership probabilities always sum to exactly K.
    #[test]
    fn membership_sums_to_k(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let member = topk_membership(&rel, k);
        let total: f64 = member.iter().sum();
        prop_assert!((total - k as f64).abs() < 1e-9, "Σ = {total}, K = {k}");
        for (f, p) in member.iter().enumerate() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(p), "item {f}: {p}");
        }
    }

    /// U-TopK's winner probability can never exceed the largest membership
    /// probability of its members, and PT-k at threshold 0 returns every
    /// item.
    #[test]
    fn semantics_relationships(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let (set, p) = u_topk(&rel, k);
        prop_assert_eq!(set.len(), k);
        prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
        let member = topk_membership(&rel, k);
        for &f in &set {
            prop_assert!(
                member[f] >= p - 1e-9,
                "member {f}: Pr(f ∈ TopK) = {} < Pr(set) = {p}", member[f]
            );
        }
        let everyone = probabilistic_threshold_topk(&rel, k, 0.0);
        prop_assert_eq!(everyone.len(), rel.len());
    }

    /// U-KRanks winners have positive probability, and rank-1's winner
    /// probability is consistent with membership.
    #[test]
    fn u_kranks_consistency(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let ranks = u_kranks(&rel, k);
        prop_assert_eq!(ranks.len(), k);
        let member = topk_membership(&rel, k);
        for (i, &(f, p)) in ranks.iter().enumerate() {
            prop_assert!(p > 0.0 && p <= 1.0 + 1e-12, "rank {i}: {p}");
            prop_assert!(
                member[f] >= p - 1e-9,
                "rank {i} winner {f}: membership {} < rank prob {p}", member[f]
            );
        }
    }

    /// `expected_rank_topk` returns K items in non-decreasing rank order,
    /// and its first pick minimises the expected rank globally.
    #[test]
    fn expected_rank_topk_is_sorted_and_optimal(rel in arb_relation()) {
        let k = rel.len().min(3);
        let top = expected_rank_topk(&rel, k);
        prop_assert_eq!(top.len(), k);
        for pair in top.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
        let all = expected_ranks(&rel);
        let best = all.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((top[0].1 - best).abs() < 1e-12);
    }
}
