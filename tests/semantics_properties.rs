//! Property tests for the alternative uncertain Top-K semantics (§2) —
//! cross-checking the polynomial-time dynamic programs (`semantics_dp`)
//! against the world-enumeration oracles (`semantics`) on every
//! enumerable relation, the fast expected-ranks computation against
//! enumeration, and the structural relationships between the semantics.

use everest::core::dist::DiscreteDist;
use everest::core::semantics::{
    expected_rank_topk, expected_ranks, probabilistic_threshold_topk, pws_expected_ranks,
    rank_probabilities, topk_membership, u_kranks, u_topk,
};
use everest::core::semantics_dp::{
    probabilistic_threshold_topk_dp, topk_membership_dp, topk_set_probability, u_kranks_dp,
    u_topk_dp, RankTable,
};
use everest::core::xtuple::UncertainRelation;
use proptest::prelude::*;

const MAX_B: usize = 3;

fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_B + 1).prop_filter_map("positive mass", |masses| {
        if masses.iter().sum::<f64>() > 1e-9 {
            Some(DiscreteDist::from_masses(&masses))
        } else {
            None
        }
    })
}

/// A distribution whose masses are multiples of ¼, so zeros and exact
/// score ties across items occur often (the tie rule's hard cases).
fn arb_tie_dense_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_B + 1).prop_filter_map("positive mass", |masses| {
        let rounded: Vec<f64> = masses.iter().map(|m| (m * 4.0).round() / 4.0).collect();
        if rounded.iter().sum::<f64>() > 0.0 {
            Some(DiscreteDist::from_masses(&rounded))
        } else {
            None
        }
    })
}

fn assemble(dists: Vec<DiscreteDist>, certains: Vec<u32>) -> UncertainRelation {
    let mut rel = UncertainRelation::new(1.0, MAX_B);
    for d in dists {
        rel.push_uncertain(d);
    }
    for b in certains {
        rel.push_certain(b);
    }
    rel
}

fn arb_relation() -> impl Strategy<Value = UncertainRelation> {
    (
        proptest::collection::vec(arb_dist(), 1..5),
        proptest::collection::vec(0u32..=MAX_B as u32, 0..3),
    )
        .prop_map(|(dists, certains)| assemble(dists, certains))
}

/// Like [`arb_relation`] but tie-dense: exact inter-item ties and zero
/// buckets are common, stressing the canonical tie-break equivalence.
fn arb_tie_dense_relation() -> impl Strategy<Value = UncertainRelation> {
    (
        proptest::collection::vec(arb_tie_dense_dist(), 1..6),
        proptest::collection::vec(0u32..=MAX_B as u32, 0..3),
    )
        .prop_map(|(dists, certains)| assemble(dists, certains))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(n·m) expected-ranks computation equals brute-force world
    /// enumeration (linearity of expectation, verified empirically).
    #[test]
    fn expected_ranks_equal_world_enumeration(rel in arb_relation()) {
        let fast = expected_ranks(&rel);
        let brute = pws_expected_ranks(&rel).unwrap();
        for (f, (a, b)) in fast.iter().zip(&brute).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "item {f}: {a} vs {b}");
        }
    }

    /// Σ_f E[rank(f)] = C(n,2): every unordered pair contributes exactly 1
    /// in every world under the midpoint tie convention.
    #[test]
    fn expected_ranks_sum_to_pair_count(rel in arb_relation()) {
        let n = rel.len() as f64;
        let total: f64 = expected_ranks(&rel).iter().sum();
        prop_assert!((total - n * (n - 1.0) / 2.0).abs() < 1e-9, "Σ = {total}, n = {n}");
    }

    /// Expected ranks live in [0, n−1].
    #[test]
    fn expected_ranks_are_bounded(rel in arb_relation()) {
        let n = rel.len() as f64;
        for (f, r) in expected_ranks(&rel).iter().enumerate() {
            prop_assert!((-1e-12..=n - 1.0 + 1e-12).contains(r), "item {f}: rank {r}");
        }
    }

    /// Top-K membership probabilities always sum to exactly K.
    #[test]
    fn membership_sums_to_k(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let member = topk_membership(&rel, k).unwrap();
        let total: f64 = member.iter().sum();
        prop_assert!((total - k as f64).abs() < 1e-9, "Σ = {total}, K = {k}");
        for (f, p) in member.iter().enumerate() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(p), "item {f}: {p}");
        }
    }

    /// U-TopK's winner probability can never exceed the largest membership
    /// probability of its members, and PT-k at threshold 0 returns every
    /// item.
    #[test]
    fn semantics_relationships(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let (set, p) = u_topk(&rel, k).unwrap();
        prop_assert_eq!(set.len(), k);
        prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
        let member = topk_membership(&rel, k).unwrap();
        for &f in &set {
            prop_assert!(
                member[f] >= p - 1e-9,
                "member {f}: Pr(f ∈ TopK) = {} < Pr(set) = {p}", member[f]
            );
        }
        let everyone = probabilistic_threshold_topk(&rel, k, 0.0).unwrap();
        prop_assert_eq!(everyone.len(), rel.len());
    }

    /// U-KRanks winners have positive probability, and rank-1's winner
    /// probability is consistent with membership.
    #[test]
    fn u_kranks_consistency(rel in arb_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let ranks = u_kranks(&rel, k).unwrap();
        prop_assert_eq!(ranks.len(), k);
        let member = topk_membership(&rel, k).unwrap();
        for (i, &(f, p)) in ranks.iter().enumerate() {
            prop_assert!(p > 0.0 && p <= 1.0 + 1e-12, "rank {i}: {p}");
            prop_assert!(
                member[f] >= p - 1e-9,
                "rank {i} winner {f}: membership {} < rank prob {p}", member[f]
            );
        }
    }

    /// `expected_rank_topk` returns K items in non-decreasing rank order,
    /// and its first pick minimises the expected rank globally.
    #[test]
    fn expected_rank_topk_is_sorted_and_optimal(rel in arb_relation()) {
        let k = rel.len().min(3);
        let top = expected_rank_topk(&rel, k);
        prop_assert_eq!(top.len(), k);
        for pair in top.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
        let all = expected_ranks(&rel);
        let best = all.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((top[0].1 - best).abs() < 1e-12);
    }

    // ---- DP ≡ enumeration (the tentpole equivalences) ----

    /// The rank-distribution DP reproduces the full positional table of the
    /// enumeration oracle: `Pr(rank(f) = i)` for every item and rank.
    #[test]
    fn dp_rank_table_equals_enumeration(rel in arb_tie_dense_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let table = RankTable::build(&rel, k);
        let brute = rank_probabilities(&rel, k).unwrap();
        for f in 0..rel.len() {
            let mut brute_member = 0.0;
            for (i, row) in brute.iter().enumerate() {
                prop_assert!(
                    (table.rank_prob(f, i) - row[f]).abs() < 1e-9,
                    "item {f} rank {i}: dp {} vs brute {}", table.rank_prob(f, i), row[f]
                );
                brute_member += row[f];
            }
            prop_assert!(
                (table.membership(f) - brute_member).abs() < 1e-9,
                "item {f}: membership dp {} vs brute {brute_member}", table.membership(f)
            );
            prop_assert!(
                (table.membership(f) + table.beyond_prob(f) - 1.0).abs() < 1e-9,
                "item {f}: table row must be a distribution"
            );
        }
    }

    /// U-KRanks via DP equals U-KRanks via enumeration: identical winners
    /// (same tie rule) and probabilities, rank by rank.
    #[test]
    fn dp_u_kranks_equals_enumeration(rel in arb_tie_dense_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let dp = u_kranks_dp(&rel, k);
        let bf = u_kranks(&rel, k).unwrap();
        prop_assert_eq!(dp.len(), bf.len());
        for (i, (d, b)) in dp.iter().zip(&bf).enumerate() {
            prop_assert!((d.1 - b.1).abs() < 1e-9, "rank {i}: dp {} vs bf {}", d.1, b.1);
            // Winners may only differ when their probabilities tie to
            // within float noise; in that case both must be maximal.
            if d.0 != b.0 {
                prop_assert!(
                    (d.1 - b.1).abs() < 1e-9,
                    "rank {i}: different winners {} vs {} without a tie", d.0, b.0
                );
            }
        }
    }

    /// Canonical set probabilities from the closed form match the world
    /// mass the enumeration oracle accumulates per canonical Top-K set —
    /// and PT-k / membership marginals agree between the two layers.
    #[test]
    fn dp_membership_and_ptk_equal_enumeration(
        rel in arb_tie_dense_relation(),
        k_seed in 0usize..100,
        thresh in 0.0f64..1.0,
    ) {
        let k = 1 + k_seed % rel.len();
        let dp = topk_membership_dp(&rel, k);
        let bf = topk_membership(&rel, k).unwrap();
        for (f, (a, b)) in dp.iter().zip(&bf).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "item {f}: dp {a} vs bf {b}");
        }
        prop_assert_eq!(
            probabilistic_threshold_topk_dp(&rel, k, thresh),
            probabilistic_threshold_topk(&rel, k, thresh).unwrap()
        );
    }

    /// U-TopK via the candidate-set search equals U-TopK via enumeration:
    /// the winning probabilities match, and the DP's set is itself a
    /// maximiser (on exact ties either lexicographic winner is accepted
    /// from the float-order-sensitive search).
    #[test]
    fn dp_u_topk_equals_enumeration(rel in arb_tie_dense_relation(), k_seed in 0usize..100) {
        let k = 1 + k_seed % rel.len();
        let (dp_set, dp_p) = u_topk_dp(&rel, k);
        let (bf_set, bf_p) = u_topk(&rel, k).unwrap();
        prop_assert!((dp_p - bf_p).abs() < 1e-9, "dp {dp_p} vs bf {bf_p}");
        // The DP's set must achieve the maximal probability under the
        // enumeration oracle's own accounting.
        let dp_set_bf = topk_set_probability(&rel, &dp_set);
        prop_assert!(
            (dp_set_bf - bf_p).abs() < 1e-9,
            "dp set {dp_set:?} scores {dp_set_bf} vs optimum {bf_p} ({bf_set:?})"
        );
        prop_assert_eq!(dp_set.len(), k);
    }

    /// The closed-form canonical set probability sums to 1 over the Top-1
    /// candidates (they partition the worlds), and every value matches the
    /// enumeration-backed U-Top-1 accounting.
    #[test]
    fn dp_set_probabilities_partition_for_top1(rel in arb_tie_dense_relation()) {
        let total: f64 = (0..rel.len())
            .map(|f| topk_set_probability(&rel, &[f]))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "Σ = {total}");
    }

    /// Truncated expected ranks from the DP table equal
    /// `E[min(rank(f), K)]` accumulated over enumerated worlds.
    #[test]
    fn dp_truncated_expected_ranks_equal_enumeration(
        rel in arb_tie_dense_relation(),
        k_seed in 0usize..100,
    ) {
        let k = 1 + k_seed % rel.len();
        let dp = RankTable::build(&rel, k).truncated_expected_ranks();
        // brute: Σ_worlds Pr(w)·min(rank_w(f), k)
        let n = rel.len();
        let mut brute = vec![0.0f64; n];
        for world in everest::core::pws::enumerate_worlds(&rel).unwrap() {
            let mut ids: Vec<usize> = (0..n).collect();
            ids.sort_by(|&a, &b| world.buckets[b].cmp(&world.buckets[a]).then(a.cmp(&b)));
            for (rank, &f) in ids.iter().enumerate() {
                brute[f] += world.prob * rank.min(k) as f64;
            }
        }
        for (f, (a, b)) in dp.iter().zip(&brute).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "item {f}: dp {a} vs brute {b}");
        }
    }
}

/// The acceptance-scale smoke test: a 200-item relation (≈ 5²⁰⁰ worlds)
/// that only the DP layer can evaluate, well under a second.
#[test]
fn dp_semantics_evaluate_200_items_quickly() {
    let n = 200;
    let max_b = 600;
    let mut rel = UncertainRelation::new(1.0, max_b);
    for i in 0..n {
        // Distinct strengths (center 3·i) with ±2-bucket supports, so
        // neighbours genuinely overlap but no two items are identical.
        let center = (3 * i) as f64;
        let masses: Vec<f64> = (0..=max_b)
            .map(|b| {
                let d = (b as f64 - center).abs();
                if d > 2.0 {
                    0.0
                } else {
                    (-d / 0.8).exp()
                }
            })
            .collect();
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    assert!(
        everest::core::pws::enumerate_worlds(&rel).is_err(),
        "the enumeration oracle must refuse this relation"
    );

    let k = 10;
    let started = std::time::Instant::now();
    let table = RankTable::build(&rel, k);
    let (set, p) = u_topk_dp(&rel, k);
    let ranks = u_kranks_dp(&rel, k);
    let ptk = probabilistic_threshold_topk_dp(&rel, k, 0.5);
    let elapsed = started.elapsed();

    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "DP semantics took {elapsed:?} on 200 items"
    );
    assert_eq!(set.len(), k);
    assert!(p > 0.0 && p <= 1.0);
    assert_eq!(ranks.len(), k);
    assert!(!ptk.is_empty(), "strong items must clear PT-k at 0.5");
    let member_sum: f64 = table.memberships().iter().sum();
    assert!(
        (member_sum - k as f64).abs() < 1e-6,
        "Σ membership = {member_sum}"
    );
    // The U-TopK winner's members must each clear their own membership.
    for &f in &set {
        assert!(table.membership(f) >= p - 1e-9);
    }
}
