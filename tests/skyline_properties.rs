//! Property tests for the probabilistic skyline operator (§5 future work):
//! the factorized confidence must agree exactly with possible-world
//! enumeration, and domination probabilities must behave like
//! probabilities.

use everest::core::dist::DiscreteDist;
use everest::core::skyline::{
    dominates, prob_dominated, pws_skyline_probability, skyline_of, skyline_state, DimState,
    SkylineMaintainer, VectorRelation,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MAX_B: usize = 3;

fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_B + 1).prop_filter_map("positive mass", |masses| {
        if masses.iter().sum::<f64>() > 1e-9 {
            Some(DiscreteDist::from_masses(&masses))
        } else {
            None
        }
    })
}

/// A small mixed 2-D relation (uncertain + certain items).
fn arb_relation() -> impl Strategy<Value = VectorRelation> {
    (
        proptest::collection::vec((arb_dist(), arb_dist()), 1..4),
        proptest::collection::vec((0u32..=MAX_B as u32, 0u32..=MAX_B as u32), 1..4),
    )
        .prop_map(|(uncertain, certain)| {
            let mut rel = VectorRelation::new(vec![MAX_B, MAX_B]);
            for (x, y) in certain {
                rel.push_certain(&[x, y]);
            }
            for (dx, dy) in uncertain {
                rel.push_uncertain(vec![dx, dy]);
            }
            rel
        })
}

fn arb_points() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        (0u32..=MAX_B as u32, 0u32..=MAX_B as u32).prop_map(|(x, y)| vec![x, y]),
        0..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The central identity: `p̂ = Π_u Pr(S_u ∈ Dominated(R̂))` equals the
    /// brute-force probability that the certain skyline IS the skyline —
    /// a world's skyline equals R̂ iff every uncertain item is dominated
    /// by R̂ (transitivity argument in the module docs).
    #[test]
    fn factorized_confidence_equals_world_enumeration(rel in arb_relation()) {
        let state = skyline_state(&rel);
        let brute = pws_skyline_probability(&rel, &state.skyline);
        prop_assert!(
            (state.confidence - brute).abs() < 1e-9,
            "fast {} vs brute {}", state.confidence, brute
        );
    }

    /// Domination factors are probabilities, and the confidence is their
    /// product.
    #[test]
    fn factors_are_probabilities(rel in arb_relation()) {
        let state = skyline_state(&rel);
        let mut product = 1.0;
        for &(_, p) in &state.factors {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "factor {p}");
            product *= p;
        }
        prop_assert!((product - state.confidence).abs() < 1e-12);
    }

    /// `prob_dominated` is monotone in the point set: more dominating
    /// points can only grow the dominated region.
    #[test]
    fn prob_dominated_monotone_in_points(
        rel in arb_relation(),
        points in arb_points(),
        extra in (0u32..=MAX_B as u32, 0u32..=MAX_B as u32),
    ) {
        let bigger: Vec<Vec<u32>> = points
            .iter()
            .cloned()
            .chain(std::iter::once(vec![extra.0, extra.1]))
            .collect();
        for u in rel.uncertain_ids() {
            let p_small = prob_dominated(&rel, u, &points);
            let p_big = prob_dominated(&rel, u, &bigger);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p_small));
            prop_assert!(
                p_big >= p_small - 1e-12,
                "item {u}: adding a point shrank Pr(dominated): {p_small} → {p_big}"
            );
        }
    }

    /// The 2-D staircase fast path agrees with direct support enumeration.
    #[test]
    fn staircase_matches_enumeration(rel in arb_relation(), points in arb_points()) {
        for u in rel.uncertain_ids() {
            let fast = prob_dominated(&rel, u, &points);
            // direct: Σ_{x,y} Pr(X=x)Pr(Y=y) · 1[∃p: p ≻ (x,y)]
            let mut direct = 0.0;
            for x in 0..=MAX_B as u32 {
                for y in 0..=MAX_B as u32 {
                    let px = pmf_of(&rel, u, 0, x);
                    let py = pmf_of(&rel, u, 1, y);
                    if px * py > 0.0 && points.iter().any(|p| dominates(p, &[x, y])) {
                        direct += px * py;
                    }
                }
            }
            prop_assert!((fast - direct).abs() < 1e-9, "item {u}: {fast} vs {direct}");
        }
    }

    /// Skyline structural invariants: members never dominate each other,
    /// non-members are always dominated by some member, and the skyline of
    /// the skyline is itself.
    #[test]
    fn skyline_structural_invariants(
        vectors in proptest::collection::vec(
            (0u32..=6, 0u32..=6).prop_map(|(x, y)| vec![x, y]), 1..12),
    ) {
        let tagged: Vec<(usize, Vec<u32>)> = vectors.into_iter().enumerate().collect();
        let sky = skyline_of(&tagged);
        prop_assert!(!sky.is_empty(), "a non-empty set always has a maximal element");
        let members: Vec<&Vec<u32>> =
            sky.iter().map(|id| &tagged.iter().find(|(i, _)| i == id).unwrap().1).collect();
        for a in &members {
            for b in &members {
                prop_assert!(!dominates(a, b), "skyline member dominated: {a:?} ≻ {b:?}");
            }
        }
        for (id, v) in &tagged {
            if !sky.contains(id) {
                prop_assert!(
                    members.iter().any(|m| dominates(m, v)),
                    "non-member {v:?} not dominated by any member"
                );
            }
        }
        // idempotence
        let again: Vec<(usize, Vec<u32>)> = sky
            .iter()
            .map(|&id| (id, tagged.iter().find(|(i, _)| *i == id).unwrap().1.clone()))
            .collect();
        let mut sky2 = skyline_of(&again);
        let mut sky1 = sky.clone();
        sky1.sort_unstable();
        sky2.sort_unstable();
        prop_assert_eq!(sky1, sky2);
    }

    /// Cleaning an item to its modal bucket vector keeps all invariants
    /// and produces a state whose confidence still matches brute force.
    #[test]
    fn cleaning_preserves_the_identity(rel in arb_relation()) {
        let mut rel = rel;
        if let Some(&u) = rel.uncertain_ids().first() {
            // clean to each dimension's most probable bucket
            let v: Vec<u32> = (0..rel.dims())
                .map(|j| {
                    (0..=MAX_B as u32)
                        .max_by(|&a, &b| {
                            pmf_of(&rel, u, j, a)
                                .partial_cmp(&pmf_of(&rel, u, j, b))
                                .unwrap()
                        })
                        .unwrap()
                })
                .collect();
            rel.clean(u, &v);
            prop_assert!(rel.is_certain(u));
            let state = skyline_state(&rel);
            let brute = pws_skyline_probability(&rel, &state.skyline);
            prop_assert!((state.confidence - brute).abs() < 1e-9);
        }
    }
}

/// Pr(dimension `j` of item `u` equals bucket `b`), via the public API.
fn pmf_of(rel: &VectorRelation, u: usize, j: usize, b: u32) -> f64 {
    rel.dim_pmf(u, j, b as usize)
}

// ---------------------------------------------------------------------------
// Incremental maintainer ≡ full recompute (the permanent oracle for the
// streaming skyline path).
// ---------------------------------------------------------------------------

/// One random staircase mutation. Selector fields are resolved against the
/// *current* live set at apply time (modulo its size), so every generated
/// sequence is valid regardless of how earlier ops reshaped the set.
#[derive(Debug, Clone)]
enum Mutation {
    InsertCertain(u32, u32),
    InsertUncertain(DiscreteDist, DiscreteDist),
    Remove(usize),
    /// Oracle confirmation: shifts an uncertain item onto an exact point
    /// (the "score-shift" that moves the staircase).
    Clean(usize, u32, u32),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    // Uncertain inserts get double weight: factors are where the
    // incremental bookkeeping can silently go stale.
    (
        0u8..5,
        0u32..=MAX_B as u32,
        0u32..=MAX_B as u32,
        arb_dist(),
        arb_dist(),
        any::<usize>(),
    )
        .prop_map(|(kind, x, y, dx, dy, sel)| match kind {
            0 => Mutation::InsertCertain(x, y),
            1 | 2 => Mutation::InsertUncertain(dx, dy),
            3 => Mutation::Remove(sel),
            _ => Mutation::Clean(sel, x, y),
        })
}

/// Rebuilds a fresh relation from the live items (ascending id) and runs
/// the from-scratch [`skyline_state`]; returns the state with its item
/// ids translated back to maintainer ids.
fn recompute_oracle(live: &BTreeMap<usize, Vec<DimState>>) -> (Vec<usize>, Vec<(usize, f64)>, f64) {
    let mut rel = VectorRelation::new(vec![MAX_B, MAX_B]);
    let order: Vec<usize> = live.keys().copied().collect();
    for dims in live.values() {
        rel.push(dims.clone());
    }
    let state = skyline_state(&rel);
    let mut skyline: Vec<usize> = state.skyline.iter().map(|&i| order[i]).collect();
    skyline.sort_unstable();
    let factors: Vec<(usize, f64)> = state.factors.iter().map(|&(i, p)| (order[i], p)).collect();
    (skyline, factors, state.confidence)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The permanent oracle pinning the incremental [`SkylineMaintainer`]
    /// to the from-scratch [`skyline_state`]: after *every* mutation in a
    /// random insert/remove/clean sequence, the maintained state — the
    /// certain skyline, each uncertain item's domination factor, and the
    /// confidence product — equals a full recompute over the surviving
    /// items, and the maintainer spent no more factor recomputations than
    /// the recompute-everything baseline would have.
    #[test]
    fn maintainer_matches_full_recompute_under_random_mutations(
        ops in proptest::collection::vec(arb_mutation(), 1..25),
    ) {
        let mut m = SkylineMaintainer::new(vec![MAX_B, MAX_B]);
        let mut live: BTreeMap<usize, Vec<DimState>> = BTreeMap::new();
        let mut next_id = 0usize;
        let mut baseline_recomputes = 0u64;

        for op in ops {
            match op {
                Mutation::InsertCertain(x, y) => {
                    let dims = vec![DimState::Certain(x), DimState::Certain(y)];
                    m.insert(next_id, dims.clone());
                    live.insert(next_id, dims);
                    next_id += 1;
                }
                Mutation::InsertUncertain(dx, dy) => {
                    let dims = vec![DimState::Uncertain(dx), DimState::Uncertain(dy)];
                    m.insert(next_id, dims.clone());
                    live.insert(next_id, dims);
                    next_id += 1;
                }
                Mutation::Remove(sel) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = *live.keys().nth(sel % live.len()).unwrap();
                    m.remove(id);
                    live.remove(&id);
                }
                Mutation::Clean(sel, x, y) => {
                    let uncertain: Vec<usize> = live
                        .iter()
                        .filter(|(_, d)| {
                            d.iter().any(|s| matches!(s, DimState::Uncertain(_)))
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    if uncertain.is_empty() {
                        continue;
                    }
                    let id = uncertain[sel % uncertain.len()];
                    m.clean(id, &[x, y]);
                    live.insert(id, vec![DimState::Certain(x), DimState::Certain(y)]);
                }
            }
            // A recompute-everything baseline pays one factor evaluation
            // per uncertain survivor per mutation.
            baseline_recomputes += live
                .values()
                .filter(|d| d.iter().any(|s| matches!(s, DimState::Uncertain(_))))
                .count() as u64;

            let state = m.state();
            let (want_sky, want_factors, want_conf) = recompute_oracle(&live);
            prop_assert_eq!(&state.skyline, &want_sky, "skyline diverged");
            prop_assert_eq!(
                state.factors.len(),
                want_factors.len(),
                "factor set diverged"
            );
            for (&(id, got), &(want_id, want)) in
                state.factors.iter().zip(&want_factors)
            {
                prop_assert_eq!(id, want_id);
                prop_assert!(
                    (got - want).abs() < 1e-12,
                    "item {}: factor {} vs recompute {}", id, got, want
                );
            }
            prop_assert!(
                (state.confidence - want_conf).abs() < 1e-12,
                "confidence {} vs recompute {}", state.confidence, want_conf
            );
        }
        prop_assert!(
            m.stats.factor_recomputes <= baseline_recomputes,
            "incremental maintenance did more work ({}) than recompute-all ({})",
            m.stats.factor_recomputes,
            baseline_recomputes
        );
    }
}
