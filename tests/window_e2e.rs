//! End-to-end window queries (§3.4): Top-K tumbling windows with sampled
//! oracle confirmation, against exact window ground truth.
//!
//! All tests share one `PreparedVideo` (Phase 1 — CMDN training — is by
//! far the dominant cost and is identical across them); each test runs
//! its own Phase-2 queries against a fresh instrumented oracle.

use everest::core::baselines::topk_indices;
use everest::core::cleaner::CleanerConfig;
use everest::core::metrics::{evaluate_topk, GroundTruth};
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::{Everest, PreparedVideo};
use everest::core::window::exact_window_scores;
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};
use std::sync::OnceLock;

static PREPARED: OnceLock<(SyntheticVideo, PreparedVideo)> = OnceLock::new();

/// One Phase 1 for the whole suite; re-preparing per test would repeat
/// identical CMDN training (~25s each).
fn setup() -> (
    &'static SyntheticVideo,
    &'static PreparedVideo,
    InstrumentedOracle<everest::models::ExactScoreOracle>,
) {
    let (video, prepared) = PREPARED.get_or_init(|| {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 3_000,
                base_intensity: 3.5,
                diurnal_amplitude: 0.7,
                burst_rate_per_10k: 8.0,
                burst_boost: 3.0,
                ..ArrivalConfig::default()
            },
            23,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 23, 30.0);
        let o = InstrumentedOracle::new(counting_oracle(&v));
        let prepared = Everest::prepare(&v, &o, &phase1_cfg());
        (v, prepared)
    });
    // Fresh per-test oracle: same deterministic scores, isolated counters.
    let oracle = InstrumentedOracle::new(counting_oracle(video));
    (video, prepared, oracle)
}

fn phase1_cfg() -> Phase1Config {
    Phase1Config {
        sample_frac: 0.1,
        sample_cap: 320,
        sample_min: 200,
        grid: HyperGrid::single(5, 24),
        train: TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16, 32],
        threads: 4,
        ..Phase1Config::default()
    }
}

#[test]
fn window_query_finds_busy_windows() {
    let (_video, prepared, oracle) = setup();
    let window_len = 60;
    let k = 5;
    let report =
        prepared.query_topk_windows(&oracle, k, 0.9, window_len, 0.2, &CleanerConfig::default());
    assert!(report.converged);
    assert_eq!(report.items.len(), k);

    // Window ground truth and quality.
    let exact = exact_window_scores(oracle.inner().all_scores(), &prepared.windows(window_len));
    let truth = GroundTruth::new(exact.clone());
    let answer: Vec<usize> = report.items.iter().map(|i| i.frame / window_len).collect();
    let q = evaluate_topk(&truth, &answer, k);
    // Sampling-based confirmation makes window scores estimates, so allow
    // the fluctuation the paper reports (§4.2.3) while requiring the
    // answer to be concentrated near the true top.
    assert!(q.precision >= 0.6, "window precision {}", q.precision);
    let exact_top = topk_indices(&exact, k);
    let best_missed = answer.iter().filter(|w| exact_top.contains(w)).count();
    assert!(
        best_missed >= k / 2,
        "answer misses most of the exact top: {answer:?}"
    );
}

#[test]
fn full_sampling_gives_exact_window_scores() {
    let (_video, prepared, oracle) = setup();
    let window_len = 50;
    let report = prepared.query_topk_windows(
        &oracle,
        4,
        0.9,
        window_len,
        1.0, // confirm whole windows
        &CleanerConfig::default(),
    );
    let exact = exact_window_scores(oracle.inner().all_scores(), &prepared.windows(window_len));
    for item in &report.items {
        let wid = item.frame / window_len;
        assert!(
            (item.score - exact[wid]).abs() <= prepared.phase1.relation.step() / 4.0 + 1e-9,
            "window {wid}: confirmed {} vs exact {} (quantization only)",
            item.score,
            exact[wid]
        );
    }
}

#[test]
fn larger_windows_need_more_oracle_frames_per_cleaning() {
    let (_video, prepared, oracle) = setup();
    let small = prepared.query_topk_windows(&oracle, 5, 0.9, 30, 0.1, &CleanerConfig::default());
    let large = prepared.query_topk_windows(&oracle, 5, 0.9, 150, 0.1, &CleanerConfig::default());
    let per_clean_small = small.oracle_frames as f64 / small.cleaned.max(1) as f64;
    let per_clean_large = large.oracle_frames as f64 / large.cleaned.max(1) as f64;
    assert!(
        per_clean_large > per_clean_small,
        "larger windows should confirm more frames per cleaning: {per_clean_small} vs {per_clean_large}"
    );
}

#[test]
fn sliding_windows_find_the_same_peaks_with_finer_offsets() {
    let (video, prepared, oracle) = setup();
    let (len, slide, k) = (60, 20, 5);
    let report = prepared.query_topk_sliding_windows(
        &oracle,
        k,
        0.9,
        len,
        slide,
        0.5,
        &CleanerConfig::default(),
    );
    assert!(report.converged);
    assert!(report.confidence >= 0.9);
    assert_eq!(report.items.len(), k);
    for item in &report.items {
        assert_eq!(item.range.0 % slide, 0, "starts on the slide grid");
        assert!(item.range.1 - item.range.0 <= len);
    }

    // The best sliding window's exact mean must be at least the best
    // tumbling window's: tumbling windows are a subset of sliding ones.
    use everest::core::window::{sliding_windows, tumbling_windows};
    let scores = oracle.inner().all_scores();
    let best = |ws: &[everest::core::window::WindowInfo]| {
        exact_window_scores(scores, ws)
            .into_iter()
            .fold(f64::MIN, f64::max)
    };
    let best_sliding = best(&sliding_windows(video.timeline().n_frames(), len, slide));
    let best_tumbling = best(&tumbling_windows(video.timeline().n_frames(), len));
    assert!(
        best_sliding >= best_tumbling - 1e-12,
        "sliding {best_sliding} vs tumbling {best_tumbling}"
    );

    // Overlap suppression on the answer yields pairwise-disjoint moments.
    let ranked: Vec<everest::core::window::WindowInfo> = report
        .items
        .iter()
        .map(|i| everest::core::window::WindowInfo {
            start: i.range.0,
            end: i.range.1,
        })
        .collect();
    let disjoint = everest::core::window::suppress_overlaps(&ranked);
    for a in 0..disjoint.len() {
        for b in (a + 1)..disjoint.len() {
            let (x, y) = (disjoint[a], disjoint[b]);
            assert!(x.end <= y.start || y.end <= x.start, "{x:?} overlaps {y:?}");
        }
    }
    assert!(!disjoint.is_empty());
}
