//! End-to-end tests for the `everest-serve` daemon: concurrent clients
//! over real TCP against a real worker pool, proving
//!
//! * **byte-identity** — answers served concurrently are canonically
//!   byte-identical to a single-process [`Session`] running the same
//!   EVQL;
//! * **robustness** — adversarial bytes (proptest-generated mutations of
//!   valid frames, raw garbage, oversized length prefixes) are rejected
//!   without killing the daemon;
//! * **graceful shutdown** — under in-flight load, every accepted query
//!   is answered (`ShutdownReport::clean`);
//! * **fault tolerance** — client disconnects mid-query, slow readers
//!   that trip the write timeout, and `RELOAD` racing active sessions
//!   all leave `SHOW SESSIONS` / metrics consistent;
//! * **determinism** — the same seeded load against two fresh daemons
//!   produces identical answer digests and identical deterministic
//!   metrics sections.

use everest::evql::wire::{self, Request, Response};
use everest::evql::{Session, SessionSettings};
use everest_serve::{Client, LoadgenConfig, ServeConfig, Server, WALL_CLOCK_MARKER};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The settings every daemon in this file serves with: floor-scaled
/// datasets (2 000 frames each) so queries answer in milliseconds.
fn test_settings() -> SessionSettings {
    SessionSettings {
        scale: 1_000,
        ..SessionSettings::default()
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        settings: test_settings(),
        workers: 4,
        ..ServeConfig::default()
    }
}

/// Canonical answer bytes from a local, single-process session — the
/// reference the daemon must match byte for byte.
fn local_canonical(session: &mut Session, query: &str) -> Vec<u8> {
    let output = session
        .execute(query)
        .unwrap_or_else(|e| panic!("{}", e.render(query)));
    wire::canonical_output(&output)
}

/// Polls `cond` for up to 10 s.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Scan-engine queries: no Phase-1 training, so they answer fast and
/// exercise the full wire/session/pool path.
const SCAN_QUERIES: [&str; 4] = [
    "SELECT TOP 5 FRAMES FROM Archie USING scan",
    "SELECT TOP 10 FRAMES FROM Grand-Canal SCORE count(boat) USING scan",
    "SELECT TOP 3 FRAMES FROM Taipei-bus USING scan",
    "SELECT TOP 2 WINDOWS OF 30 FRAMES FROM Archie USING scan",
];

/// One full Everest-engine query (CMDN + oracle-in-the-loop cleaning),
/// pinned by seed; its Phase-1 build lands in the daemon's shared cache.
const EVEREST_QUERY: &str = "SELECT TOP 5 FRAMES FROM Archie WITH SEED 11";

#[test]
fn concurrent_answers_are_byte_identical_to_a_single_process_session() {
    let mut reference = Session::with_settings(test_settings());
    let mut queries: Vec<&str> = SCAN_QUERIES.to_vec();
    queries.push(EVEREST_QUERY);
    let expected: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| local_canonical(&mut reference, q))
        .collect();

    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();
    let clients = 6;
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Rotate the order per client so the daemon sees the mix
                // interleaved, not in lockstep.
                for i in 0..queries.len() {
                    let idx = (i + c) % queries.len();
                    match client.query(&queries[idx]).unwrap() {
                        Response::Answer {
                            canonical,
                            rendered,
                            ..
                        } => {
                            assert_eq!(
                                canonical, expected[idx],
                                "client {c}: daemon answer for {:?} diverged from the \
                                 single-process session",
                                queries[idx]
                            );
                            assert!(!rendered.is_empty());
                        }
                        other => panic!("expected answer for {:?}, got {other:?}", queries[idx]),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The Everest query was asked by 6 clients but its Phase-1 build is
    // single-flight: the shared cache saw exactly one miss for its key.
    let stats = handle.cache().stats();
    assert_eq!(
        stats.misses, 1,
        "expected one single-flight build: {stats:?}"
    );
    assert_eq!(stats.hits, (clients - 1) as u64, "{stats:?}");

    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert_eq!(report.queries_accepted, (clients * queries.len()) as u64);
}

#[test]
fn protocol_fuzz_rejects_malformed_frames_without_killing_the_daemon() {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();

    // Proptest-driven byte mutations, generated deterministically: raw
    // garbage, single-byte corruptions of a valid frame, truncations,
    // and adversarial length prefixes.
    let mut rng = TestRng::deterministic("serve_e2e::protocol_fuzz");
    let garbage = proptest::collection::vec(any::<u8>(), 1..200);
    let corrupt_pos = any::<u16>();
    let mode = 0u8..4;
    let valid = frame_of(&Request::Query {
        id: 7,
        text: "SELECT TOP 3 FRAMES FROM Archie USING scan".into(),
    });

    for _ in 0..48 {
        let attack: Vec<u8> = match Strategy::generate(&mode, &mut rng) {
            0 => Strategy::generate(&garbage, &mut rng),
            1 => {
                let mut bytes = valid.clone();
                let pos = Strategy::generate(&corrupt_pos, &mut rng) as usize % bytes.len();
                bytes[pos] ^= 0xff;
                bytes
            }
            2 => {
                let cut =
                    1 + Strategy::generate(&corrupt_pos, &mut rng) as usize % (valid.len() - 1);
                valid[..cut].to_vec()
            }
            _ => {
                // Absurd length prefix, then whatever fits.
                let mut bytes = u32::MAX.to_be_bytes().to_vec();
                bytes.extend_from_slice(&valid);
                bytes
            }
        };
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.send_raw(&attack).unwrap();
        let _ = client.finish_writing();
        // Drain whatever the daemon says (an error frame, a valid answer
        // if the mutation happened to keep the frame well-formed, or an
        // immediate close) until EOF. The daemon must never hang us past
        // the read timeout.
        loop {
            match client.read_response() {
                Ok(_) => {}
                Err(e) => {
                    assert_ne!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock,
                        "daemon hung on attack bytes {attack:?}"
                    );
                    assert_ne!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut,
                        "daemon hung on attack bytes {attack:?}"
                    );
                    break;
                }
            }
        }
    }

    // The daemon took every attack and still serves clean sessions.
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.query(SCAN_QUERIES[0]).unwrap(),
        Response::Answer { .. }
    ));
    let metrics = handle.metrics();
    assert!(
        metrics.protocol_errors.load(Ordering::Relaxed) > 0,
        "the fuzz run should have tripped the protocol-error counter"
    );
    drop(client);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "unclean drain after fuzz: {report:?}");
}

fn frame_of(request: &Request) -> Vec<u8> {
    wire::frame(&request.encode())
}

#[test]
fn shutdown_under_load_loses_no_accepted_query() {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();
    let delivered = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..4)
        .map(|c| {
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return, // Raced shutdown before connecting.
                };
                for i in 0..200 {
                    let q = SCAN_QUERIES[(c + i) % SCAN_QUERIES.len()];
                    match client.query(q) {
                        Ok(Response::Answer { .. }) => {
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => panic!("unexpected response {other:?}"),
                        // Connection closed by the drain: stop issuing.
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();

    // Let the load build up, then pull the plug mid-flight.
    wait_for(
        || delivered.load(Ordering::Relaxed) >= 8,
        "load to get going before shutdown",
    );
    handle.shutdown();
    for t in threads {
        t.join().unwrap();
    }

    let report = join.join().unwrap();
    assert!(
        report.clean(),
        "accepted ≠ answered after drain: {report:?}"
    );
    // Every response produced was for an accepted query; clients may have
    // received fewer (a response can be in flight when they bail) but
    // never more.
    assert!(report.queries_accepted >= delivered.load(Ordering::Relaxed));
    assert!(delivered.load(Ordering::Relaxed) >= 8);
}

#[test]
fn client_disconnect_mid_query_keeps_registry_and_metrics_consistent() {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();

    // Fire a query and vanish without reading the answer.
    {
        let mut client = Client::connect(addr).unwrap();
        client
            .send(|id| Request::Query {
                id,
                text: SCAN_QUERIES[0].to_string(),
            })
            .unwrap();
    } // dropped here, mid-query

    let metrics = handle.metrics();
    // The accepted query must still be executed and answered (the write
    // may fail, which is the client's problem, not a lost query).
    wait_for(
        || metrics.queries_answered.load(Ordering::Relaxed) == 1,
        "the abandoned query to be answered",
    );
    wait_for(
        || handle.registry().is_empty(),
        "the dead session to leave the registry",
    );
    assert_eq!(metrics.queries_accepted.load(Ordering::Relaxed), 1);

    // A fresh session sees a consistent world: itself in SHOW SESSIONS,
    // and metrics that still parse and balance.
    let mut observer = Client::connect(addr).unwrap();
    match observer.admin("SHOW SESSIONS").unwrap() {
        Response::Message { text, .. } => {
            assert!(text.starts_with("1 session(s)"), "{text}");
        }
        other => panic!("unexpected {other:?}"),
    }
    match observer.admin("SHOW METRICS").unwrap() {
        Response::Message { text, .. } => {
            assert!(text.contains("queries_accepted=1"), "{text}");
            assert!(text.contains("queries_answered=1"), "{text}");
            assert!(text.contains(WALL_CLOCK_MARKER), "{text}");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(observer);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
}

#[test]
fn slow_reader_trips_the_write_timeout_without_stalling_the_daemon() {
    let cfg = ServeConfig {
        write_timeout: Duration::from_millis(100),
        ..test_config()
    };
    let (handle, join) = Server::spawn(cfg).unwrap();
    let addr = handle.addr();

    // A client that floods pings and never reads: the echoes pile up in
    // the socket buffers until the daemon's write blocks past its
    // timeout.
    let flooder = std::thread::spawn(move || {
        let mut client = match Client::connect(addr) {
            Ok(c) => c,
            Err(e) => panic!("connect: {e}"),
        };
        let nonce = vec![0xabu8; 512 * 1024];
        for _ in 0..40 {
            let sent = client.send(|id| Request::Ping {
                id,
                nonce: nonce.clone(),
            });
            if sent.is_err() {
                break; // Daemon already cut us off — that's the point.
            }
        }
    });

    let metrics = handle.metrics();
    wait_for(
        || metrics.write_timeouts.load(Ordering::Relaxed) >= 1,
        "the slow reader to trip a write timeout",
    );
    flooder.join().unwrap();

    // The daemon sheds the slow reader and keeps serving everyone else.
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.query(SCAN_QUERIES[0]).unwrap(),
        Response::Answer { .. }
    ));
    drop(client);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
}

#[test]
fn reload_racing_active_sessions_serves_identical_answers() {
    let mut reference = Session::with_settings(test_settings());
    let expected: Vec<Vec<u8>> = SCAN_QUERIES
        .iter()
        .map(|q| local_canonical(&mut reference, q))
        .collect();

    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();

    let workers: Vec<_> = (0..3)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..12 {
                    let idx = (c + i) % SCAN_QUERIES.len();
                    match client.query(SCAN_QUERIES[idx]).unwrap() {
                        Response::Answer { canonical, .. } => {
                            assert_eq!(canonical, expected[idx], "answer diverged under RELOAD");
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();

    let mut admin = Client::connect(addr).unwrap();
    for _ in 0..10 {
        match admin.admin("RELOAD").unwrap() {
            Response::Message { text, .. } => assert!(text.contains("reloaded"), "{text}"),
            other => panic!("unexpected {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for t in workers {
        t.join().unwrap();
    }

    assert!(handle.cache().stats().reloads >= 10);
    match admin.admin("SHOW CACHES").unwrap() {
        Response::Message { text, .. } => {
            assert!(text.contains("prepared-video cache"), "{text}");
            assert!(text.contains("reloads=10"), "{text}");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(admin);
    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
}

/// One seeded load run against a fresh daemon: returns the loadgen
/// report plus the daemon's deterministic metrics section after a full
/// drain.
fn seeded_run(seed: u64) -> (everest_serve::LoadgenReport, String) {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let report =
        everest_serve::run_loadgen(&LoadgenConfig::new(handle.addr(), 8, 6, seed)).unwrap();
    handle.shutdown();
    let shutdown = join.join().unwrap();
    assert!(shutdown.clean(), "{shutdown:?}");
    (report, handle.metrics().render_deterministic())
}

#[test]
fn seeded_load_is_deterministic_across_fresh_daemons() {
    let (first, first_metrics) = seeded_run(0xE7E);
    let (second, second_metrics) = seeded_run(0xE7E);

    assert_eq!(first.errors, 0, "{first:?}");
    assert_eq!(first.queries_total, 48);
    assert_eq!(
        first.digest, second.digest,
        "same seed, fresh daemons, different answers:\n{first:?}\n{second:?}"
    );
    assert_eq!(first.queries_total, second.queries_total);
    assert_eq!(
        first_metrics, second_metrics,
        "deterministic metrics sections diverged"
    );
    // Wall-clock fields exist but are excluded from the comparison.
    assert!(first.qps > 0.0);
    assert!(first.p50_us > 0 && first.p99_us >= first.p50_us);

    // A different seed asks a different sequence: the digest must move.
    let (third, _) = seeded_run(0x5EED);
    assert_ne!(first.digest, third.digest);
}

#[test]
fn admin_surface_ping_and_oversized_frames() {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping(vec![1, 2, 3]).unwrap(), vec![1, 2, 3]);

    match client.admin("show metrics").unwrap() {
        // Commands are case-insensitive; pings were counted.
        Response::Message { text, .. } => assert!(text.contains("pings=1"), "{text}"),
        other => panic!("unexpected {other:?}"),
    }
    match client.admin("FLUSH TABLES").unwrap() {
        Response::Error { text, .. } => assert!(text.contains("unknown admin command"), "{text}"),
        other => panic!("unexpected {other:?}"),
    }

    // An oversized length prefix is rejected with a protocol error and a
    // closed connection — on a different connection, so `client` lives.
    let mut attacker = Client::connect(addr).unwrap();
    attacker
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    attacker
        .send_raw(&(wire::max_frame() + 1).to_be_bytes())
        .unwrap();
    match attacker.read_response() {
        Ok(Response::Error { id, text }) => {
            assert_eq!(id, 0);
            assert!(text.contains("exceeds"), "{text}");
        }
        Ok(other) => panic!("unexpected {other:?}"),
        Err(_) => {} // Closed before the error frame arrived: also fine.
    }
    drop(attacker);

    // The first session still works, and SHUTDOWN over the wire drains.
    assert!(matches!(
        client.query(SCAN_QUERIES[0]).unwrap(),
        Response::Answer { .. }
    ));
    match client.admin("SHUTDOWN").unwrap() {
        Response::Message { text, .. } => assert!(text.contains("shutting down"), "{text}"),
        other => panic!("unexpected {other:?}"),
    }
    drop(client);
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.queries_accepted, 1);
}
