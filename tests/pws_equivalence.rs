//! Property tests: the fast confidence path (Eq. 2 via the incremental
//! joint CDF) and the closed-form Eq. 1 evaluation
//! (`semantics_dp::topk_confidence`) are equivalent to brute-force
//! possible-world semantics (Eq. 1 by enumeration) on arbitrary
//! relations, including under arbitrary cleaning sequences.

use everest::core::dist::DiscreteDist;
use everest::core::pws::{count_worlds, enumerate_worlds, topk_confidence_bruteforce, MAX_WORLDS};
use everest::core::semantics_dp::topk_confidence;
use everest::core::topkprob::{topk_prob, topk_prob_naive, JointCdf};
use everest::core::xtuple::UncertainRelation;
use proptest::prelude::*;

const MAX_BUCKET: usize = 3;

/// Strategy: random distribution over MAX_BUCKET+1 buckets.
fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_BUCKET + 1).prop_filter_map(
        "needs positive mass",
        |mut masses| {
            // round masses so ties and zeros occur often
            for m in &mut masses {
                *m = (*m * 4.0).round() / 4.0;
            }
            if masses.iter().sum::<f64>() > 0.0 {
                Some(DiscreteDist::from_masses(&masses))
            } else {
                None
            }
        },
    )
}

/// Strategy: a relation of 2–6 items, first `n_certain` of them certain.
fn arb_relation() -> impl Strategy<Value = UncertainRelation> {
    (
        proptest::collection::vec(arb_dist(), 2..6),
        proptest::collection::vec(0u32..=MAX_BUCKET as u32, 0..3),
    )
        .prop_map(|(dists, certains)| {
            let mut rel = UncertainRelation::new(1.0, MAX_BUCKET);
            for b in certains {
                rel.push_certain(b);
            }
            for d in dists {
                rel.push_uncertain(d);
            }
            rel
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 2's joint-CDF evaluation equals the naive CDF product.
    #[test]
    fn joint_cdf_matches_naive_product(rel in arb_relation()) {
        let h = JointCdf::build(&rel);
        for t in 0..=MAX_BUCKET {
            let fast = h.value(t);
            let naive = topk_prob_naive(&rel, t);
            prop_assert!((fast - naive).abs() < 1e-9, "t={t}: {fast} vs {naive}");
        }
    }

    /// After cleaning every item to an arbitrary bucket (one at a time, in
    /// arbitrary order), the incremental joint CDF still matches a rebuild.
    #[test]
    fn incremental_updates_match_rebuild(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..6, 0u32..=MAX_BUCKET as u32), 1..6),
    ) {
        let mut rel = rel;
        let mut h = JointCdf::build(&rel);
        for (raw_id, bucket) in picks {
            let uncertain = rel.uncertain_ids();
            if uncertain.is_empty() { break; }
            let id = uncertain[raw_id % uncertain.len()];
            let old = rel.clean(id, bucket);
            h.remove(&old);
            let rebuilt = JointCdf::build(&rel);
            for t in 0..=MAX_BUCKET {
                prop_assert!((h.value(t) - rebuilt.value(t)).abs() < 1e-9);
            }
            prop_assert_eq!(h.members(), rebuilt.members());
        }
    }

    /// The certain-result fast path (Eq. 2) agrees with brute-force PWS
    /// (Eq. 1) for the Top-K drawn from the certain subset.
    #[test]
    fn fast_confidence_equals_bruteforce(
        rel in arb_relation(),
        k in 1usize..3,
    ) {
        // Build the certain Top-K (bucket desc, id asc).
        let mut certain: Vec<(u32, usize)> = rel
            .certain_ids()
            .into_iter()
            .map(|id| (rel.certain_bucket(id).unwrap(), id))
            .collect();
        certain.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        prop_assume!(certain.len() >= k);
        let answer: Vec<usize> = certain.iter().take(k).map(|&(_, id)| id).collect();
        let s_k = certain[k - 1].0 as usize;

        let h = JointCdf::build(&rel);
        let fast = topk_prob(&h, s_k);
        let brute = topk_confidence_bruteforce(&rel, &answer, k).unwrap();
        prop_assert!((fast - brute).abs() < 1e-9, "fast {fast} vs brute {brute}");
        // The closed-form Eq. 1 evaluation agrees with both.
        let closed = topk_confidence(&rel, &answer, k);
        prop_assert!((closed - brute).abs() < 1e-9, "closed {closed} vs brute {brute}");
    }

    /// The closed-form Eq. 1 confidence (`semantics_dp::topk_confidence`)
    /// equals enumeration for *arbitrary* answers — certain or uncertain
    /// members, any composition (not just the certain-result fast path).
    #[test]
    fn closed_form_confidence_equals_bruteforce(
        rel in arb_relation(),
        pick in proptest::collection::vec(0usize..6, 1..4),
    ) {
        // Derive a deterministic answer set of size ≤ n from the picks.
        let mut answer: Vec<usize> = pick.iter().map(|&p| p % rel.len()).collect();
        answer.sort_unstable();
        answer.dedup();
        let k = answer.len();
        let closed = topk_confidence(&rel, &answer, k);
        let brute = topk_confidence_bruteforce(&rel, &answer, k).unwrap();
        prop_assert!(
            (closed - brute).abs() < 1e-9,
            "answer {answer:?}: closed {closed} vs brute {brute}"
        );
    }

    /// Confidence is monotone in the threshold bucket.
    #[test]
    fn confidence_monotone_in_threshold(rel in arb_relation()) {
        let h = JointCdf::build(&rel);
        let mut prev = 0.0;
        for t in 0..=MAX_BUCKET {
            let v = h.value(t);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert!((h.value(MAX_BUCKET) - 1.0).abs() < 1e-9);
    }
}

/// Oversized relations: enumeration refuses with a typed error while the
/// closed-form Eq. 1 path still answers (the graceful-degradation story).
#[test]
fn oversized_relation_degrades_to_closed_form() {
    let mut rel = UncertainRelation::new(1.0, 9);
    let masses = vec![0.1; 10];
    for _ in 0..30 {
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    assert!(count_worlds(&rel) > MAX_WORLDS);
    let err = enumerate_worlds(&rel).expect_err("guard must trip");
    assert!(err.to_string().contains("too large"));
    assert!(topk_confidence_bruteforce(&rel, &[0, 1], 2).is_err());
    // The closed form is exact and instant on the same relation.
    let p = topk_confidence(&rel, &[0, 1], 2);
    assert!((0.0..=1.0).contains(&p));
    // 30 iid items: by symmetry the Top-2 confidence of any pair is small.
    assert!(p < 0.1, "iid pair confidence {p}");
}
