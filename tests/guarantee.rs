//! The probabilistic guarantee, statistically: when the proxy
//! distributions are *calibrated* (the true score really is drawn from the
//! x-tuple's distribution), a query that terminates with confidence ≥
//! `thres` must be an exact Top-K answer in at least `thres` of runs.
//!
//! This is the semantic heart of the paper — Pr(R̂ = R) ≥ thres under
//! possible-world semantics — exercised end to end through the cleaner.

use everest::core::cleaner::{run_cleaner, CleanerConfig, FnCleaningOracle};
use everest::core::dist::DiscreteDist;
use everest::core::xtuple::UncertainRelation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_BUCKET: usize = 8;

/// Builds a calibrated instance: random per-item distributions, with the
/// ground truth *sampled from* each distribution.
fn calibrated_instance(n: usize, n_certain: usize, seed: u64) -> (UncertainRelation, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = UncertainRelation::new(1.0, MAX_BUCKET);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        // random unimodal-ish distribution
        let center: f64 = rng.gen_range(0.0..MAX_BUCKET as f64);
        let width: f64 = rng.gen_range(0.6..2.5);
        let masses: Vec<f64> = (0..=MAX_BUCKET)
            .map(|b| (-((b as f64 - center) / width).powi(2)).exp() + 1e-4)
            .collect();
        let dist = DiscreteDist::from_masses(&masses);
        let t = dist.sample_with(rng.gen::<f64>()) as u32;
        truth.push(t);
        if i < n_certain {
            rel.push_certain(t);
        } else {
            rel.push_uncertain(dist);
        }
    }
    (rel, truth)
}

/// Tie-aware exactness: R̂ is an exact Top-K iff no outside item scores
/// strictly above the minimum inside.
fn is_exact_topk(truth: &[u32], answer: &[usize]) -> bool {
    let min_in = answer.iter().map(|&id| truth[id]).min().unwrap();
    truth
        .iter()
        .enumerate()
        .filter(|(id, _)| !answer.contains(id))
        .all(|(_, &t)| t <= min_in)
}

#[test]
fn guarantee_holds_statistically_at_thres_080() {
    let thres = 0.80;
    let trials = 60;
    let mut exact = 0;
    for trial in 0..trials {
        let (mut rel, truth) = calibrated_instance(120, 10, 1000 + trial);
        let t = truth.clone();
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 5,
            thres,
            batch_size: 4,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert!(out.converged, "trial {trial} did not converge");
        assert!(out.confidence >= thres);
        if is_exact_topk(&truth, &out.topk) {
            exact += 1;
        }
    }
    let rate = exact as f64 / trials as f64;
    // Binomial slack: se ≈ sqrt(0.8·0.2/60) ≈ 0.05; allow 2.5σ below thres.
    assert!(
        rate >= thres - 0.13,
        "empirical exactness {rate} violates the {thres} guarantee"
    );
}

#[test]
fn guarantee_holds_at_high_threshold() {
    let thres = 0.95;
    let trials = 40;
    let mut exact = 0;
    for trial in 0..trials {
        let (mut rel, truth) = calibrated_instance(80, 8, 9_000 + trial);
        let t = truth.clone();
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 3,
            thres,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert!(out.confidence >= thres);
        if is_exact_topk(&truth, &out.topk) {
            exact += 1;
        }
    }
    let rate = exact as f64 / trials as f64;
    assert!(
        rate >= thres - 0.12,
        "empirical exactness {rate} below {thres}"
    );
}

#[test]
fn every_returned_item_is_oracle_confirmed() {
    // Certain-result condition across many random instances.
    for trial in 0..10 {
        let (mut rel, truth) = calibrated_instance(60, 5, 77 + trial);
        let t = truth.clone();
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 4,
            thres: 0.9,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        for &id in &out.topk {
            assert_eq!(
                rel.certain_bucket(id),
                Some(truth[id]),
                "returned item {id} must carry its exact oracle score"
            );
        }
    }
}

#[test]
fn cleaning_effort_grows_with_threshold() {
    // §4.2.2: reaching 0.5 takes most iterations; 0.5 → 0.99 costs little
    // extra. Verify both monotonicity and the "cheap tail" observation.
    let mut cleaned = Vec::new();
    for &thres in &[0.5, 0.9, 0.99] {
        let mut total = 0usize;
        for trial in 0..8 {
            let (mut rel, truth) = calibrated_instance(200, 12, 500 + trial);
            let t = truth.clone();
            let mut oracle = FnCleaningOracle(|id| t[id]);
            let cfg = CleanerConfig {
                k: 5,
                thres,
                ..Default::default()
            };
            total += run_cleaner(&mut rel, &mut oracle, &cfg).cleaned;
        }
        cleaned.push(total);
    }
    assert!(
        cleaned[0] <= cleaned[1] && cleaned[1] <= cleaned[2],
        "{cleaned:?}"
    );
    // the marginal cost of 0.9 → 0.99 is far below the cost of reaching 0.5
    let base = cleaned[0].max(1);
    let tail = cleaned[2] - cleaned[1];
    assert!(
        tail <= base,
        "tail 0.9→0.99 ({tail}) should not exceed the cost of reaching 0.5 ({base})"
    );
}
