//! Chaos end-to-end tests for fault-tolerant serving: seeded oracle
//! fault injection, admission-control overload shedding, mid-query
//! client disconnects, and keep-alive recycling — all against a real
//! daemon over TCP.
//!
//! The central claims, from the robustness contract:
//!
//! * **no panic** — every scenario ends in a clean drain
//!   ([`everest_serve::ShutdownReport::clean`]);
//! * **nothing lost** — `accepted == answered + shed`, with shed
//!   queries answered by a typed `Overloaded` frame;
//! * **degraded answers replay** — an answer produced under fault
//!   injection (with its achieved confidence and termination cause) is
//!   canonically byte-identical to an offline single-process replay of
//!   the same statement, because the fault schedule is a pure function
//!   of the `FLAKY` seed and simulated time never reads the wall clock.

use everest::evql::wire::Response;
use everest::evql::{ExecStats, Output, Session, SessionSettings};
use everest_serve::{Client, ServeConfig, Server};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn test_settings() -> SessionSettings {
    SessionSettings {
        scale: 1_000,
        ..SessionSettings::default()
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        settings: test_settings(),
        workers: 4,
        ..ServeConfig::default()
    }
}

/// Polls `cond` for up to 10 s.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stats_of(output: &Output) -> &ExecStats {
    match output {
        Output::Rows(q) => &q.stats,
        Output::Skyline(s) => &s.stats,
        Output::Stream(s) => &s.stats,
        Output::Message(_) => panic!("query produced no stats"),
    }
}

/// Fault-injected, budget-capped queries. `WITHIN 0` cannot even
/// bootstrap K certain items, so it is degraded by construction; the
/// others are tight enough that faults and caps bite without making the
/// outcome seed-marginal.
const CHAOS_QUERIES: [&str; 4] = [
    "SELECT TOP 5 FRAMES FROM Archie WITHIN 0 ORACLE CALLS WITH SEED 21, FLAKY 7",
    "SELECT TOP 5 FRAMES FROM Archie WITHIN 30 ORACLE CALLS WITH SEED 21, FLAKY 7",
    "SELECT TOP 3 FRAMES FROM Taipei-bus WITH SEED 22, DEADLINE 2.5, FLAKY 1000",
    "SELECT TOP 4 FRAMES FROM Irish-Center WITHIN 25 ORACLE CALLS WITH SEED 23, FLAKY 99",
];

#[test]
fn flaky_answers_replay_bit_for_bit_against_an_offline_session() {
    // Offline replay: a private single-process session running the same
    // statements. Its canonical bytes (rows, confidence, termination)
    // are the reference the daemon must reproduce exactly.
    let mut reference = Session::with_settings(test_settings());
    let mut expected = Vec::new();
    let mut expected_retries = 0u64;
    let mut expected_degraded = 0u64;
    for q in CHAOS_QUERIES {
        let output = reference
            .execute(q)
            .unwrap_or_else(|e| panic!("{}", e.render(q)));
        let stats = stats_of(&output);
        expected_retries += stats.oracle_retries.unwrap_or(0);
        expected_degraded += stats.termination.is_some_and(|t| t.is_degraded()) as u64;
        expected.push(everest::evql::wire::canonical_output(&output));
    }
    assert!(
        expected_degraded >= 1,
        "the chaos mix must contain at least one degraded answer \
         (WITHIN 0 cannot converge)"
    );

    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();
    let clients = 4;
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..CHAOS_QUERIES.len() {
                    let idx = (i + c) % CHAOS_QUERIES.len();
                    match client.query(CHAOS_QUERIES[idx]).unwrap() {
                        Response::Answer { canonical, .. } => assert_eq!(
                            canonical, expected[idx],
                            "client {c}: degraded answer for {:?} diverged from the \
                             offline replay",
                            CHAOS_QUERIES[idx]
                        ),
                        other => panic!("expected answer, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Fault handling is deterministic per statement execution, so the
    // daemon totals are exact multiples of the offline run's.
    let metrics = handle.metrics();
    assert_eq!(
        metrics.oracle_retries.load(Ordering::Relaxed),
        expected_retries * clients as u64,
        "oracle retry totals diverged from the offline replay"
    );
    assert_eq!(
        metrics.degraded_answers.load(Ordering::Relaxed),
        expected_degraded * clients as u64,
    );

    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "unclean drain: {report:?}");
    assert_eq!(report.queries_shed, 0);
}

#[test]
fn overload_sheds_with_typed_responses_and_loses_nothing() {
    let cfg = ServeConfig {
        // One admission slot: any concurrent arrival is shed.
        max_inflight_queries: Some(1),
        ..test_config()
    };
    let (handle, join) = Server::spawn(cfg).unwrap();
    let addr = handle.addr();

    // All clients fire the same cache-missing Everest query at once; the
    // first occupies the only slot for the whole Phase-1 build, so the
    // rest are shed and must retry until admitted.
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> u64 {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut sheds = 0u64;
                loop {
                    match client
                        .query("SELECT TOP 5 FRAMES FROM Archie WITH SEED 31")
                        .unwrap()
                    {
                        Response::Answer { .. } => return sheds,
                        Response::Overloaded { inflight, text, .. } => {
                            assert!(inflight >= 1, "shed with an empty daemon");
                            assert!(text.contains("retry"), "{text}");
                            sheds += 1;
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    let shed_seen: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        shed_seen >= 1,
        "8 simultaneous clients against 1 admission slot never shed"
    );

    // The daemon survived the stampede and still serves.
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client
            .query("SELECT TOP 3 FRAMES FROM Archie USING scan")
            .unwrap(),
        Response::Answer { .. }
    ));
    match client.admin("SHOW SESSIONS").unwrap() {
        Response::Message { text, .. } => {
            assert!(text.contains("admission: max_inflight_queries=1"), "{text}");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(client);

    handle.shutdown();
    let report = join.join().unwrap();
    // The overload contract: nothing silently dropped — every accepted
    // query was either answered or answered-with-Overloaded.
    assert!(report.clean(), "accepted != answered + shed: {report:?}");
    assert_eq!(report.queries_shed, shed_seen);
    assert_eq!(report.queries_answered, report.queries_accepted - shed_seen);
    assert_eq!(
        handle.metrics().shed_queries.load(Ordering::Relaxed),
        shed_seen
    );
}

#[test]
fn disconnect_mid_query_cancels_cleaning_into_a_degraded_answer() {
    let (handle, join) = Server::spawn(test_config()).unwrap();
    let addr = handle.addr();

    // Fire a fresh-seed Everest query (guaranteed Phase-1 build, so
    // execution outlives us) and vanish without reading the answer. The
    // disconnect watcher trips the cancel token while the query runs;
    // Phase 2 observes it at its first gate and returns `cancelled`.
    {
        let mut client = Client::connect(addr).unwrap();
        client
            .send(|id| everest::evql::wire::Request::Query {
                id,
                text: "SELECT TOP 10 FRAMES FROM Archie WITH SEED 41, CONFIDENCE 0.99".into(),
            })
            .unwrap();
    } // dropped here, mid-query

    let metrics = handle.metrics();
    // The accepted query is still executed and counted answered (the
    // failed write is the client's loss, not a dropped query)…
    wait_for(
        || metrics.queries_answered.load(Ordering::Relaxed) == 1,
        "the abandoned query to be answered",
    );
    // …but as a cancelled, degraded answer rather than a full cleaning
    // run for a client that is no longer there.
    assert_eq!(
        metrics.degraded_answers.load(Ordering::Relaxed),
        1,
        "disconnect was not converted into a degraded (cancelled) answer"
    );
    wait_for(
        || handle.registry().is_empty(),
        "the dead session to leave the registry",
    );

    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
}

#[test]
fn keepalive_limits_recycle_connections_and_reap_idle_sessions() {
    let cfg = ServeConfig {
        max_queries_per_connection: Some(3),
        idle_timeout: Some(Duration::from_millis(150)),
        ..test_config()
    };
    let (handle, join) = Server::spawn(cfg).unwrap();
    let addr = handle.addr();
    let scan = "SELECT TOP 3 FRAMES FROM Archie USING scan";

    // Query limit: the third answer arrives, then the daemon closes.
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..3 {
        assert!(matches!(
            client.query(scan).unwrap(),
            Response::Answer { .. }
        ));
    }
    assert!(
        client.query(scan).is_err(),
        "connection outlived max_queries_per_connection"
    );

    // Idle limit: a connection that goes quiet is reaped without the
    // client doing anything.
    let idle = Client::connect(addr).unwrap();
    wait_for(
        || handle.registry().is_empty(),
        "the idle session to be reaped",
    );
    drop(idle);

    // The limits are visible in SHOW SESSIONS (fresh connection — the
    // observer itself stays under both limits).
    let mut observer = Client::connect(addr).unwrap();
    match observer.admin("SHOW SESSIONS").unwrap() {
        Response::Message { text, .. } => {
            assert!(
                text.contains("keep-alive: max_queries_per_connection=3, idle_timeout=150ms"),
                "{text}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(observer);

    handle.shutdown();
    let report = join.join().unwrap();
    assert!(report.clean(), "{report:?}");
    // 3 answered on the recycled connection + 1 whose connection closed
    // before the send + the observer's admin (not a query).
    assert!(report.queries_accepted >= 3);
}
