//! Regression pin for the "cleaning fraction at toy scale" ROADMAP item.
//!
//! Quickstart's Top-5 query cleans 78% of unique frames, where the paper
//! reports ~1%. The open question was whether tie-dense counting scores at
//! small scale or a loose `Select-candidate` stop rule is the cause. The
//! controlled comparison below answers it — the cause is **neither**; it
//! is proxy miscalibration from quickstart's deliberately starved Phase-1
//! recipe:
//!
//! * **Not the stop rule.** The cleaner exits at p̂ = 0.9005 — the first
//!   batch that crosses thres = 0.9. An overshoot of half a percent
//!   leaves no room for a "loose" stop to waste oracle calls; the test
//!   asserts the overshoot stays tiny.
//! * **Not tie density.** The 2 000 retained frames occupy only 14
//!   distinct count buckets, but the boundary tie groups are small: the
//!   four buckets at-or-just-below `s_k = 13` hold ~115 items in total,
//!   while the run cleans 1 560. Even confirming *every* boundary-tied
//!   frame could not account for a tenth of the spend.
//! * **It is calibration.** With 200 training labels, 10 epochs, and a
//!   3×16 hypergrid, the CMDN's mixtures are so flat that *all* 1 808
//!   uncertain items carry proxy mass at or above the boundary bucket, so
//!   Eq. 2's product forces the cleaner through most of the relation. The
//!   control: the **same video** (identical scores, identical ties,
//!   identical stop rule) prepared with a properly trained proxy
//!   (500 labels, 25 epochs, 5×24 grid) cleans **0.4%** — better than
//!   the paper's ~1% — converging in a single batch.
//!
//! Both halves are pinned so a calibration regression (or a stop-rule
//! regression) shows up as a loud diff in this file.

use everest::core::cleaner::CleanerConfig;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::{Everest, PreparedVideo};
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};

const THRES: f64 = 0.9;

/// The quickstart video: 2 000 frames, default arrivals, seed 42.
fn quickstart_video() -> SyntheticVideo {
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames: 2_000,
            ..ArrivalConfig::default()
        },
        42,
    );
    SyntheticVideo::new(SceneConfig::default(), timeline, 42, 30.0)
}

fn prepare(video: &SyntheticVideo, phase1: &Phase1Config) -> PreparedVideo {
    let oracle = InstrumentedOracle::new(counting_oracle(video));
    Everest::prepare(video, &oracle, phase1)
}

/// Quickstart's starved recipe (examples/quickstart.rs, unchanged).
fn starved_phase1() -> Phase1Config {
    Phase1Config {
        sample_frac: 0.08,
        sample_cap: 200,
        sample_min: 32,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16],
        ..Phase1Config::default()
    }
}

/// The same pipeline with enough labels and epochs to calibrate.
fn calibrated_phase1() -> Phase1Config {
    Phase1Config {
        sample_frac: 0.25,
        sample_cap: 500,
        sample_min: 32,
        grid: HyperGrid::single(5, 24),
        train: TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16, 32],
        ..Phase1Config::default()
    }
}

#[test]
fn starved_proxy_cleans_most_frames_but_not_because_of_ties_or_the_stop_rule() {
    let video = quickstart_video();
    let oracle = InstrumentedOracle::new(counting_oracle(&video));
    let prepared = prepare(&video, &starved_phase1());
    let report = prepared.query_topk(&oracle, 5, THRES, &CleanerConfig::default());

    assert!(report.converged);
    let frac = report.cleaned as f64 / report.total_items as f64;
    assert!(
        (0.55..=0.95).contains(&frac),
        "starved quickstart cleaned {frac:.3}; the ~0.78 regression moved"
    );

    // Stop rule is tight: the first batch past thres ends the loop.
    assert!(
        report.confidence - THRES < 0.02,
        "stop-rule overshoot {:.4} — Select-candidate kept cleaning past thres",
        report.confidence - THRES
    );

    // Tie density cannot explain the spend: even cleaning every frame
    // that ties with (or sits one bucket below) the true K-th score would
    // cost an order of magnitude less than what the run actually spent.
    let scores = oracle.inner().all_scores().to_vec();
    let rel = &prepared.phase1.relation;
    let item_scores: Vec<f64> = prepared
        .phase1
        .segments
        .retained()
        .iter()
        .map(|&f| scores[f])
        .collect();
    let mut sorted = item_scores.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let b_k = rel.score_to_bucket(sorted[4]);
    let boundary_ties = item_scores
        .iter()
        .filter(|&&s| {
            let b = rel.score_to_bucket(s);
            b + 1 >= b_k && b <= b_k
        })
        .count();
    assert!(
        report.cleaned > 5 * boundary_ties,
        "cleaned {} vs {} boundary-tied frames: tie density would explain the spend",
        report.cleaned,
        boundary_ties
    );

    // The actual cause: the starved CMDN leaves (almost) every uncertain
    // item with proxy mass at or above the boundary bucket, so the Eq.-2
    // product starts near zero and most of the relation must be cleaned.
    let uncertain = rel.uncertain_ids();
    let mass_above = uncertain
        .iter()
        .filter(|&&u| {
            let d = rel.dist(u).expect("uncertain item has a distribution");
            (b_k as usize..=d.max_bucket())
                .map(|b| d.pmf(b))
                .sum::<f64>()
                > 1e-6
        })
        .count();
    assert!(
        mass_above as f64 >= 0.9 * uncertain.len() as f64,
        "only {mass_above} of {} uncertain items reach the boundary — the miscalibration \
         signature changed; revisit the write-up above",
        uncertain.len()
    );
}

#[test]
fn calibrated_proxy_matches_the_papers_cleaning_fraction() {
    // Control: identical video, scores, tie structure and stop rule —
    // only the Phase-1 training budget changes.
    let video = quickstart_video();
    let oracle = InstrumentedOracle::new(counting_oracle(&video));
    let prepared = prepare(&video, &calibrated_phase1());
    let report = prepared.query_topk(&oracle, 5, THRES, &CleanerConfig::default());

    assert!(report.converged);
    assert!(report.confidence >= THRES);
    let frac = report.cleaned as f64 / report.total_items as f64;
    assert!(
        frac <= 0.05,
        "calibrated run cleaned {frac:.3}; toy scale should reach the paper's ~1% regime"
    );
}
