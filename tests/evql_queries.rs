//! Integration tests: EVQL front end driving the full Everest engine.
//!
//! These exercise the complete chain — lexer → parser → analysis → catalog
//! → Phase 1 (CMDN) → Phase 2 (oracle-in-the-loop cleaning) — on
//! floor-scaled datasets (2 000 frames), including the §4 baselines as
//! alternative engines and the §3.4 window path.

use everest::evql::{Output, Session};

fn fast_session() -> Session {
    let mut s = Session::new();
    s.settings.scale = 1_000; // floors every dataset at 2 000 frames
    s
}

fn rows(session: &mut Session, q: &str) -> everest::evql::QueryOutput {
    match session
        .execute(q)
        .unwrap_or_else(|e| panic!("{}", e.render(q)))
    {
        Output::Rows(o) => o,
        other => panic!("expected rows for {q}, got {other:?}"),
    }
}

#[test]
fn everest_and_scan_agree_on_the_top_frames() {
    let mut s = fast_session();
    let everest = rows(&mut s, "SELECT TOP 10 FRAMES FROM Archie WITH SEED 11");
    let scan = rows(
        &mut s,
        "SELECT TOP 10 FRAMES FROM Archie USING scan WITH SEED 11",
    );

    assert!(everest.stats.confidence.unwrap() >= 0.9);
    assert_eq!(everest.stats.converged, Some(true));

    // Tie-aware agreement: every Everest frame's exact score must reach
    // the scan answer's K-th score (both engines read the same oracle).
    let kth = scan.rows.last().unwrap().score;
    for row in &everest.rows {
        assert!(
            row.score >= kth,
            "frame {} score {} below scan's k-th {}",
            row.start_frame,
            row.score,
            kth
        );
    }
    // Everest must beat the scan on simulated time.
    assert!(
        everest.stats.sim_seconds < scan.stats.sim_seconds,
        "everest {}s vs scan {}s",
        everest.stats.sim_seconds,
        scan.stats.sim_seconds
    );
}

#[test]
fn window_query_via_evql_meets_guarantee() {
    let mut s = fast_session();
    let out = rows(
        &mut s,
        "SELECT TOP 3 WINDOWS OF 50 FRAMES FROM Archie WITH SAMPLE 0.5, SEED 11",
    );
    assert_eq!(out.rows.len(), 3);
    assert!(out.stats.confidence.unwrap() >= 0.9);
    for row in &out.rows {
        assert!(row.end_frame - row.start_frame <= 50);
        assert_eq!(
            row.start_frame % 50,
            0,
            "tumbling windows start on boundaries"
        );
    }
}

#[test]
fn sliding_window_query_offsets_are_on_the_slide_grid() {
    let mut s = fast_session();
    let out = rows(
        &mut s,
        "SELECT TOP 3 WINDOWS OF 60 FRAMES SLIDE 20 FROM Archie WITH SAMPLE 0.5, SEED 11",
    );
    assert_eq!(out.rows.len(), 3);
    for row in &out.rows {
        assert_eq!(
            row.start_frame % 20,
            0,
            "sliding window starts on the slide grid"
        );
    }
}

#[test]
fn baseline_engines_run_through_evql() {
    let mut s = fast_session();
    for engine in ["cmdn", "hog", "tinyyolo", "noscope"] {
        let q = format!("SELECT TOP 10 FRAMES FROM Archie USING {engine} WITH SEED 11");
        let out = rows(&mut s, &q);
        assert_eq!(out.rows.len(), 10, "{engine}");
        assert!(out.stats.quality.is_some(), "{engine}");
        assert!(
            out.stats.confidence.is_none(),
            "{engine} gives no guarantee"
        );
    }
}

#[test]
fn phase1_cache_shared_between_frame_and_window_queries() {
    let mut s = fast_session();
    let first = rows(&mut s, "SELECT TOP 5 FRAMES FROM Archie WITH SEED 11");
    assert!(!first.stats.phase1_cached);
    let windows = rows(
        &mut s,
        "SELECT TOP 3 WINDOWS OF 50 FRAMES FROM Archie WITH SAMPLE 0.5, SEED 11",
    );
    assert!(
        windows.stats.phase1_cached,
        "window query reuses the frame query's Phase 1"
    );
}

#[test]
fn continuous_udf_query_runs_with_its_default_step() {
    let mut s = fast_session();
    let out = rows(
        &mut s,
        "SELECT TOP 5 FRAMES FROM Dashcam-California WITH SEED 11",
    );
    assert_eq!(out.rows.len(), 5);
    assert!(out.stats.confidence.unwrap() >= 0.9);
    // tailgating scores are positive and descending
    for pair in out.rows.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
    assert!(out.rows[0].score > 0.0);
}

#[test]
fn explain_then_run_consistency() {
    let mut s = fast_session();
    let q = "SELECT TOP 4 WINDOWS OF 40 FRAMES SLIDE 10 FROM Archie WITH SEED 11, SAMPLE 0.5";
    let plan_text = match s.execute(&format!("EXPLAIN {q}")).unwrap() {
        Output::Message(m) => m,
        other => panic!("{other:?}"),
    };
    assert!(plan_text.contains("[sliding]"), "{plan_text}");
    assert!(
        plan_text.contains("WindowAgg(len=40, slide=10"),
        "{plan_text}"
    );
    let out = rows(&mut s, q);
    assert_eq!(out.rows.len(), 4);
}

#[test]
fn skyline_query_end_to_end() {
    let mut s = fast_session();
    let out = match s
        .execute("SELECT SKYLINE FROM Archie WITH CONFIDENCE 0.8, SEED 11")
        .unwrap_or_else(|e| panic!("{}", e.message()))
    {
        Output::Skyline(o) => o,
        other => panic!("{other:?}"),
    };
    assert!(out.stats.converged.unwrap());
    assert!(out.stats.confidence.unwrap() >= 0.8);
    assert!(!out.rows.is_empty());
    assert_eq!(out.score_names, vec!["count(car)", "coverage()"]);
    // answer rows are pairwise non-dominated under their exact scores
    // (ties at quantized values allowed; compare in bucket units)
    let to_buckets = |r: &everest::evql::SkylineRow| {
        vec![
            r.scores[0].round() as i64,
            (r.scores[1] / 2.0).round() as i64,
        ]
    };
    for a in &out.rows {
        for b in &out.rows {
            let (va, vb) = (to_buckets(a), to_buckets(b));
            let dominates =
                va.iter().zip(&vb).all(|(x, y)| x >= y) && va.iter().zip(&vb).any(|(x, y)| x > y);
            assert!(
                !dominates,
                "frame {} dominates fellow answer frame {}",
                a.frame, b.frame
            );
        }
    }
    assert_eq!(s.cached_preparations(), 2, "one Phase 1 per dimension");

    // A later Top-K on the same dataset/score reuses the skyline's
    // count-dimension Phase 1.
    let topk = match s
        .execute("SELECT TOP 5 FRAMES FROM Archie WITH SEED 11")
        .unwrap()
    {
        Output::Rows(o) => o,
        other => panic!("{other:?}"),
    };
    assert!(
        topk.stats.phase1_cached,
        "skyline and Top-K share Phase-1 work"
    );
}

#[test]
fn error_messages_render_against_the_query() {
    let mut s = fast_session();
    let q = "SELECT TOP 10 FRAMES FROM Tapei-bus";
    let err = s.execute(q).unwrap_err();
    let rendered = err.render(q);
    assert!(rendered.contains("did you mean `Taipei-bus`"), "{rendered}");
    assert!(rendered.contains("^^^"), "{rendered}");
}

#[test]
fn set_scale_changes_planned_video_size() {
    let mut s = fast_session();
    s.execute("SET scale = 1").unwrap();
    let err = s
        .execute("SELECT TOP 999999 FRAMES FROM Archie")
        .unwrap_err();
    assert!(err.message().contains("exceeds"), "{}", err.message());
    // At scale 1, Archie has its full 5 325 frames: K = 5 000 is legal.
    // (Do not run it — just confirm analysis accepts the size.)
    let plan_text = match s
        .execute("EXPLAIN SELECT TOP 5000 FRAMES FROM Archie")
        .unwrap()
    {
        Output::Message(m) => m,
        other => panic!("{other:?}"),
    };
    assert!(plan_text.contains("frames=5325"), "{plan_text}");
}
