//! Streaming ≡ batch equivalence harness for continuous Top-K
//! (`core::stream`).
//!
//! The streaming engine maintains the joint CDF in O(delta) per arrival
//! ([`Maintenance::Incremental`]); the batch reference replays the same
//! emit schedule with a from-scratch [`JointCdf::build`] per emit
//! ([`Maintenance::Rebuild`]). An answer at emit point `t` depends only on
//! frames `0..t`, so the reference is literally "a from-scratch batch run
//! over the same frame prefix". The harness asserts, **at every emit
//! point**:
//!
//! * the same Top-K set (same `(frame, bucket)` rows, same order),
//! * the same membership probabilities to 1e-9 (confidence + per-row
//!   stability),
//! * byte-identical formatted output (`StreamAnswer::render`),
//! * the same oracle spend (`cleaned`) — the cleaning policy itself must
//!   be replayable, not just its outcome,
//!
//! under randomized window sizes, emit strides, tie-dense counting
//! scores, and mid-stream arrival bursts. The EVQL end of the pipe is
//! covered by driving `Session::stream` with `EVEREST_STREAM_VERIFY=1`,
//! which makes `finish()` replay the batch reference internally and fail
//! on any divergence.

use everest::core::cleaner::FnCleaningOracle;
use everest::core::dist::DiscreteDist;
use everest::core::stream::{batch_reference, run_stream, StreamAnswer, StreamConfig};
use everest::evql::{Output, Session};
use everest::video::arrival::{poisson, ArrivalConfig, Timeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_BUCKET: usize = 10;

/// Noisy triangular proxy distributions around a ground-truth score
/// vector — the same error model the cleaner and stream unit tests use.
fn noisy_dists(truth: &[u32], seed: u64) -> Vec<DiscreteDist> {
    let mut rng = StdRng::seed_from_u64(seed);
    truth
        .iter()
        .map(|&t| {
            let mut masses = vec![0.0; MAX_BUCKET + 1];
            for db in -2i64..=2 {
                let b = (t as i64 + db).clamp(0, MAX_BUCKET as i64) as usize;
                masses[b] += match db.abs() {
                    0 => 0.4,
                    1 => 0.2,
                    _ => 0.1,
                } * rng.gen_range(0.5..1.5);
            }
            DiscreteDist::from_masses(&masses)
        })
        .collect()
}

/// Emit-by-emit equality: Top-K rows exactly, probabilities to 1e-9,
/// rendering byte-for-byte.
fn assert_equivalent(live: &[StreamAnswer], batch: &[StreamAnswer], quant_step: f64) {
    assert_eq!(live.len(), batch.len(), "emit counts differ");
    for (i, (a, b)) in live.iter().zip(batch).enumerate() {
        assert_eq!(a.at_frame, b.at_frame, "emit {i}: emit points differ");
        assert_eq!(a.window_start, b.window_start, "emit {i}: windows differ");
        assert_eq!(a.topk, b.topk, "emit {i}: Top-K sets differ");
        assert_eq!(a.cleaned, b.cleaned, "emit {i}: oracle spend differs");
        assert_eq!(a.converged, b.converged, "emit {i}: convergence differs");
        assert!(
            (a.confidence - b.confidence).abs() < 1e-9,
            "emit {i}: confidence {} vs {}",
            a.confidence,
            b.confidence
        );
        assert_eq!(a.stability.len(), b.stability.len(), "emit {i}");
        for (j, (s, t)) in a.stability.iter().zip(&b.stability).enumerate() {
            assert!(
                (s - t).abs() < 1e-9,
                "emit {i} rank {j}: stability {s} vs {t}"
            );
        }
        assert_eq!(
            a.render(quant_step),
            b.render(quant_step),
            "emit {i}: rendering must be byte-identical"
        );
    }
}

/// Runs both halves on twin oracles (the streaming run must not see the
/// batch run's confirmations) and asserts equivalence.
fn check_equivalence(cfg: &StreamConfig, truth: &[u32], seed: u64) -> Vec<StreamAnswer> {
    let dists = noisy_dists(truth, seed);
    let mut live_oracle = FnCleaningOracle(|id| truth[id]);
    let mut batch_oracle = FnCleaningOracle(|id| truth[id]);
    let live = run_stream(cfg, &dists, &mut live_oracle);
    let batch = batch_reference(cfg, &dists, &mut batch_oracle);
    assert_equivalent(&live, &batch, cfg.quant_step);
    live
}

/// Strategy: a random stream configuration on the shared bucket grid.
fn arb_cfg() -> impl Strategy<Value = StreamConfig> {
    (
        1usize..6,
        1usize..40,
        prop::option::of(1usize..80),
        prop::option::of(0usize..8),
    )
        .prop_map(|(k, emit_every, window, budget_per_emit)| StreamConfig {
            k,
            emit_every,
            window,
            budget_per_emit,
            max_bucket: MAX_BUCKET,
            ..StreamConfig::default()
        })
}

/// Strategy: tie-dense counting scores — only a handful of distinct
/// levels, so rank boundaries sit inside large tie groups (the adversarial
/// regime for Top-K semantics).
fn arb_tie_dense_truth() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=3, 30..150)
}

/// Strategy: a mid-stream burst — quiet traffic, a surge of high counts,
/// quiet again (the dashcam-incident shape from `video::arrival`).
fn arb_bursty_truth() -> impl Strategy<Value = Vec<u32>> {
    (
        prop::collection::vec(0u32..=3, 10..60),
        prop::collection::vec(6u32..=10, 5..40),
        prop::collection::vec(0u32..=3, 10..60),
    )
        .prop_map(|(quiet_a, burst, quiet_b)| [quiet_a, burst, quiet_b].concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The core invariant: for arbitrary scores and arbitrary
    /// (K, stride, window, budget), every emitted answer of the
    /// incremental engine is identical to a from-scratch batch run over
    /// the same prefix.
    #[test]
    fn streaming_equals_batch_at_every_emit(
        truth in prop::collection::vec(0u32..=MAX_BUCKET as u32, 30..200),
        cfg in arb_cfg(),
        seed in any::<u64>(),
    ) {
        check_equivalence(&cfg, &truth, seed);
    }

    /// Tie-dense counting scores: large tie groups straddling the rank
    /// boundary must not desynchronise the two engines (deterministic
    /// tie-breaking by ascending frame id is part of the contract).
    #[test]
    fn tie_dense_scores_stay_equivalent(
        truth in arb_tie_dense_truth(),
        cfg in arb_cfg(),
        seed in any::<u64>(),
    ) {
        check_equivalence(&cfg, &truth, seed);
    }

    /// A mid-stream arrival burst displaces the entire Top-K within a few
    /// strides; windowed configs additionally expire the burst later.
    /// Both transitions must replay identically.
    #[test]
    fn mid_stream_bursts_stay_equivalent(
        truth in arb_bursty_truth(),
        cfg in arb_cfg(),
        seed in any::<u64>(),
    ) {
        let answers = check_equivalence(&cfg, &truth, seed);
        // Sanity: the schedule actually emitted (the strategy guarantees
        // at least 25 frames and strides are < 40).
        if truth.len() >= cfg.emit_every {
            prop_assert!(!answers.is_empty());
        }
    }
}

/// Deterministic burst scenario on the real arrival simulator: a Poisson
/// timeline with an injected incident surge, streamed with a sliding
/// window that first absorbs and then expires the burst.
#[test]
fn arrival_timeline_burst_replays_identically() {
    let base = Timeline::generate(
        &ArrivalConfig {
            n_frames: 240,
            ..ArrivalConfig::default()
        },
        17,
    );
    let mut counts = base.counts().to_vec();
    let mut rng = StdRng::seed_from_u64(99);
    for c in counts.iter_mut().skip(90).take(40) {
        *c = (*c + 5 + poisson(&mut rng, 1.5) as u32).min(MAX_BUCKET as u32);
    }
    for c in counts.iter_mut() {
        *c = (*c).min(MAX_BUCKET as u32);
    }
    let timeline = Timeline::from_counts(&counts, 17);
    let truth = timeline.counts().to_vec();

    for window in [None, Some(60), Some(25)] {
        let cfg = StreamConfig {
            k: 4,
            emit_every: 20,
            window,
            max_bucket: MAX_BUCKET,
            ..StreamConfig::default()
        };
        let answers = check_equivalence(&cfg, &truth, 4242);
        assert_eq!(answers.len(), truth.len() / 20);
        // The burst must surface: some answer's Top-1 lives inside it …
        assert!(
            answers
                .iter()
                .any(|a| a.topk.first().is_some_and(|&(f, _)| (90..130).contains(&f))),
            "burst never reached rank 1 (window {window:?})"
        );
        // … and with a short window the burst must also expire again.
        if window == Some(25) {
            let last = answers.last().unwrap();
            for &(f, _) in &last.topk {
                assert!(f >= last.window_start, "expired frame {f} emitted");
            }
            assert!(last.window_start >= 200);
        }
    }
}

/// Tumbling windows (`emit_every == window`) are the degenerate case where
/// every emit starts from an empty certain set; equivalence still holds
/// and every emitted frame belongs to the current tumble.
#[test]
fn tumbling_windows_stay_equivalent() {
    let mut rng = StdRng::seed_from_u64(5);
    let truth: Vec<u32> = (0..180)
        .map(|_| rng.gen_range(0..=MAX_BUCKET as u32))
        .collect();
    let cfg = StreamConfig {
        k: 3,
        emit_every: 30,
        window: Some(30),
        max_bucket: MAX_BUCKET,
        ..StreamConfig::default()
    };
    let answers = check_equivalence(&cfg, &truth, 7);
    for a in &answers {
        assert_eq!(a.window_start, a.at_frame - 30);
        for &(f, _) in &a.topk {
            assert!((a.window_start..a.at_frame).contains(&f));
        }
    }
}

/// Budget-capped streams: equivalence must hold for *non-converged*
/// answers too — the partial certain set, the sub-threshold confidence
/// and the spend must all replay exactly.
#[test]
fn budget_capped_streams_stay_equivalent() {
    let mut rng = StdRng::seed_from_u64(21);
    let truth: Vec<u32> = (0..160).map(|_| rng.gen_range(0..=4)).collect();
    for budget in [0, 1, 3] {
        let cfg = StreamConfig {
            k: 5,
            thres: 0.99,
            emit_every: 16,
            budget_per_emit: Some(budget),
            max_bucket: MAX_BUCKET,
            ..StreamConfig::default()
        };
        let answers = check_equivalence(&cfg, &truth, 1000 + budget as u64);
        for a in &answers {
            assert!(a.cleaned <= budget);
        }
        // With thres = 0.99 on tie-dense scores a tiny budget cannot keep
        // up everywhere; the harness must have exercised the capped path.
        if budget <= 1 {
            assert!(answers.iter().any(|a| !a.converged));
        }
    }
}

/// End-to-end EVQL: `Session::stream` over a real prepared video, with
/// `EVEREST_STREAM_VERIFY=1` making `finish()` replay the batch reference
/// internally — the production-path version of this harness. Also pins
/// the incremental session (`next_emit`) to the drained output.
#[test]
fn evql_stream_session_verifies_against_batch() {
    std::env::set_var("EVEREST_STREAM_VERIFY", "1");
    let mut session = Session::new();
    session.settings.scale = 1_000; // floors the dataset at 2 000 frames

    let src = "SELECT TOP 3 FRAMES FROM Archie EVERY 400 FRAMES EMIT WITH SEED 7, BUDGET 12";
    let mut stream = session
        .stream(src)
        .unwrap_or_else(|e| panic!("{}", e.render(src)));
    let mut seen: Vec<StreamAnswer> = Vec::new();
    while let Some(a) = stream.next_emit() {
        seen.push(a.clone());
    }
    let out = stream
        .finish()
        .expect("EVEREST_STREAM_VERIFY: streaming≡batch replay must pass");
    assert_eq!(out.answers, seen, "finish() must drain exactly the emits");
    assert!(!out.answers.is_empty());
    for a in &out.answers {
        assert!(a.cleaned <= 12);
    }

    // The one-shot execute() path covers the same statement (fresh session
    // state is unnecessary: Phase 1 is cached, Phase 2 state is not).
    match session.execute(src) {
        Ok(Output::Stream(output)) => assert_eq!(output.answers, seen),
        other => panic!("expected a stream output, got {other:?}"),
    }
}
