//! Property tests for `Select-candidate` (Eq. 4–8) and the window
//! approximation (Eq. 9): the invariants the paper's derivations rely on.

use everest::core::dist::DiscreteDist;
use everest::core::select::{expected_confidence, psi};
use everest::core::topkprob::JointCdf;
use everest::core::xtuple::UncertainRelation;
use everest::nn::mixture::{Component, GaussianMixture};
use proptest::prelude::*;

const MAX_BUCKET: usize = 5;

fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec(0.0f64..1.0, MAX_BUCKET + 1).prop_filter_map(
        "positive mass",
        |masses| {
            if masses.iter().sum::<f64>() > 1e-9 {
                Some(DiscreteDist::from_masses(&masses))
            } else {
                None
            }
        },
    )
}

fn arb_relation() -> impl Strategy<Value = UncertainRelation> {
    (
        proptest::collection::vec(arb_dist(), 2..7),
        proptest::collection::vec(0u32..=MAX_BUCKET as u32, 2..5),
    )
        .prop_map(|(dists, certains)| {
            let mut rel = UncertainRelation::new(1.0, MAX_BUCKET);
            for b in certains {
                rel.push_certain(b);
            }
            for d in dists {
                rel.push_uncertain(d);
            }
            rel
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The ψ-based upper bound (Eq. 7) dominates E[X_f], and E[X_f] never
    /// falls below the current confidence (cleaning can only help, in
    /// expectation) nor exceeds 1.
    #[test]
    fn upper_bound_dominates_expected_confidence(
        rel in arb_relation(),
        s_k in 0usize..MAX_BUCKET,
    ) {
        let s_p = (s_k + 1).min(MAX_BUCKET);
        let h = JointCdf::build(&rel);
        let p_hat = h.value(s_k);
        let gamma = h.value(s_p);
        for id in rel.uncertain_ids() {
            let e = expected_confidence(&rel, &h, id, s_k, s_p);
            prop_assert!(e >= p_hat - 1e-12, "E < p̂ for item {id}: {e} < {p_hat}");
            prop_assert!(e <= 1.0 + 1e-12, "E > 1 for item {id}: {e}");
            let d = rel.dist(id).unwrap();
            let bound = {
                let ps = psi(d, s_k, s_p);
                if ps.is_infinite() { f64::INFINITY } else { p_hat + gamma * ps }
            };
            prop_assert!(
                bound >= e - 1e-9,
                "bound violated for item {id}: U = {bound} < E = {e}"
            );
        }
    }

    /// ψ is monotone: growing thresholds can only shrink the sort factor
    /// (the property that keeps stale-ψ upper bounds valid, §3.3.2).
    #[test]
    fn psi_monotone_under_threshold_growth(d in arb_dist()) {
        for s_k in 0..MAX_BUCKET {
            for s_p in s_k..MAX_BUCKET {
                let now = psi(&d, s_k, s_p);
                let later = psi(&d, s_k + 1, s_p + 1);
                prop_assert!(
                    later <= now || (later.is_infinite() && now.is_infinite()),
                    "ψ grew: ψ({},{}) = {now} < ψ({},{}) = {later}",
                    s_k, s_p, s_k + 1, s_p + 1
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 9's window moments match Monte-Carlo simulation of the
    /// generative story it assumes (segments share their representative's
    /// score; segments independent).
    #[test]
    fn eq9_window_moments_match_monte_carlo(
        seg_means in proptest::collection::vec(0.5f64..8.0, 2..5),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let seg_size = 10usize;
        let l = (seg_means.len() * seg_size) as f64;
        let mixtures: Vec<GaussianMixture> = seg_means
            .iter()
            .map(|&m| GaussianMixture::new(vec![
                Component { weight: 0.6, mean: m, std: 0.5 },
                Component { weight: 0.4, mean: m + 1.0, std: 1.0 },
            ]))
            .collect();

        // Eq. 9 moments.
        let mean9: f64 =
            mixtures.iter().map(|m| seg_size as f64 * m.mean() / l).sum();
        let var9: f64 =
            mixtures.iter().map(|m| seg_size as f64 * m.variance() / l).sum();

        // Monte-Carlo of the assumed generative story.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trials = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..trials {
            let mut w = 0.0;
            for m in &mixtures {
                // sample one component, then a gaussian within it
                let u: f64 = rng.gen();
                let c = if u < 0.6 { m.components()[0] } else { m.components()[1] };
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let s = c.mean + c.std * z;
                w += seg_size as f64 * s / l;
            }
            sum += w;
            sumsq += w * w;
        }
        let mc_mean = sum / trials as f64;
        let mc_var = sumsq / trials as f64 - mc_mean * mc_mean;
        prop_assert!((mean9 - mc_mean).abs() < 0.05, "mean: {mean9} vs {mc_mean}");
        // Eq. 9 as printed uses (1/L)Σ|s|σ̄², which for equal segments of
        // size |s| is |s|/L × Σσ̄² — i.e. (#segments × |s|²/L²) × avg σ².
        // The Monte-Carlo variance of the generative story is
        // (1/L²)Σ|s|²σ̄². Their ratio is exactly L/|s| (= #segments here):
        // Eq. 9 is conservative by that factor. Verify both the MC value
        // and the documented relationship.
        let exact_var: f64 = mixtures
            .iter()
            .map(|m| (seg_size * seg_size) as f64 * m.variance() / (l * l))
            .sum();
        prop_assert!((exact_var - mc_var).abs() < 0.1 * exact_var.max(0.05),
            "exact var {exact_var} vs MC {mc_var}");
        prop_assert!(var9 >= exact_var - 1e-9, "Eq. 9 must be conservative");
    }
}
