//! Property tests for the EVQL front end: print/parse round-trips for
//! well-formed queries, and no-panic guarantees on arbitrary input for
//! every stage (lexer, parser, analysis).

use everest::evql::analyze_select;
use everest::evql::ast::{Statement, Target};
use everest::evql::parse;
use everest::evql::SessionSettings;
use proptest::prelude::*;

// ---- generators for well-formed queries ----

fn arb_dataset() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "Archie",
        "Daxi-old-street",
        "Grand-Canal",
        "Irish-Center",
        "Taipei-bus",
        "VisualRoad-100",
        "Dashcam-California",
        "Vlog",
    ])
}

fn arb_engine() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "everest",
        "scan",
        "oracle",
        "cmdn",
        "hog",
        "tinyyolo",
        "noscope",
        "select_topk",
    ])
}

#[derive(Debug, Clone)]
struct QuerySpec {
    k: u64,
    window: Option<(u64, Option<u64>)>,
    dataset: &'static str,
    engine: Option<&'static str>,
    confidence: Option<u32>, // percent, 1..=99
    seed: Option<u64>,
    whitespace: bool,
    lowercase_kw: bool,
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        1u64..=20,
        proptest::option::of((2u64..=60, proptest::option::of(1u64..=60))),
        arb_dataset(),
        proptest::option::of(arb_engine()),
        proptest::option::of(1u32..=99),
        proptest::option::of(0u64..=1_000),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(k, window, dataset, engine, confidence, seed, whitespace, lowercase_kw)| QuerySpec {
                k,
                window: window.map(|(len, slide)| (len, slide.map(|s| s.min(len).max(1)))),
                dataset,
                engine,
                confidence,
                seed,
                whitespace,
                lowercase_kw,
            },
        )
}

impl QuerySpec {
    fn render(&self) -> String {
        let kw = |s: &str| {
            if self.lowercase_kw {
                s.to_ascii_lowercase()
            } else {
                s.to_string()
            }
        };
        let pad = if self.whitespace { "  " } else { " " };
        let mut q = format!("{}{pad}{}{pad}{}", kw("SELECT"), kw("TOP"), self.k);
        match self.window {
            None => q.push_str(&format!("{pad}{}", kw("FRAMES"))),
            Some((len, slide)) => {
                q.push_str(&format!(
                    "{pad}{}{pad}{}{pad}{len}{pad}{}",
                    kw("WINDOWS"),
                    kw("OF"),
                    kw("FRAMES")
                ));
                if let Some(s) = slide {
                    q.push_str(&format!("{pad}{}{pad}{s}", kw("SLIDE")));
                }
            }
        }
        q.push_str(&format!("{pad}{}{pad}{}", kw("FROM"), self.dataset));
        if let Some(e) = self.engine {
            q.push_str(&format!("{pad}{}{pad}{e}", kw("USING")));
        }
        let mut opts: Vec<String> = Vec::new();
        if let Some(c) = self.confidence {
            opts.push(format!("{} 0.{c:02}", kw("CONFIDENCE")));
        }
        if let Some(s) = self.seed {
            opts.push(format!("{} {s}", kw("SEED")));
        }
        if !opts.is_empty() {
            q.push_str(&format!("{pad}{}{pad}{}", kw("WITH"), opts.join(", ")));
        }
        q
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Well-formed queries parse, and the AST reflects exactly what was
    /// printed (print → parse round-trip on the semantic fields).
    #[test]
    fn well_formed_queries_round_trip(spec in arb_query()) {
        let text = spec.render();
        let stmt = match parse(&text) {
            Ok(Statement::Select(s)) => s,
            other => return Err(TestCaseError::fail(format!("{text} → {other:?}"))),
        };
        prop_assert_eq!(stmt.k, spec.k, "{}", text);
        prop_assert_eq!(&stmt.source, spec.dataset, "{}", text);
        match (spec.window, stmt.target) {
            (None, Target::Frames) => {}
            (Some((len, slide)), Target::Windows { len: l, slide: s, .. }) => {
                prop_assert_eq!(len, l);
                prop_assert_eq!(slide, s.map(|(v, _)| v));
            }
            (w, t) => return Err(TestCaseError::fail(format!("{w:?} vs {t:?}"))),
        }
        prop_assert_eq!(
            stmt.engine.as_ref().map(|(e, _)| e.as_str()),
            spec.engine,
            "{}", text
        );
        if let Some(c) = spec.confidence {
            let got = stmt.option("confidence").unwrap().value.as_f64().unwrap();
            prop_assert!((got - f64::from(c) / 100.0).abs() < 1e-12);
        }
    }

    /// Well-formed queries also pass analysis (valid dataset + parameters
    /// by construction), and planning preserves K and the engine.
    #[test]
    fn well_formed_queries_analyze(spec in arb_query()) {
        let text = spec.render();
        let stmt = match parse(&text) {
            Ok(Statement::Select(s)) => s,
            other => return Err(TestCaseError::fail(format!("{text} → {other:?}"))),
        };
        // Window engines other than everest/scan are rejected by design;
        // skip those combinations (they are covered by unit tests).
        let windowed = spec.window.is_some();
        let engine_ok = matches!(spec.engine, None | Some("everest") | Some("scan") | Some("oracle"));
        // tailgating/sentiment datasets reject nothing here (default score).
        if windowed && !engine_ok {
            prop_assert!(analyze_select(&stmt, &SessionSettings::default()).is_err());
        } else {
            let plan = analyze_select(&stmt, &SessionSettings::default())
                .map_err(|e| TestCaseError::fail(format!("{text}: {}", e.message())))?;
            prop_assert_eq!(plan.k as u64, spec.k);
            if let Some(c) = spec.confidence {
                prop_assert!((plan.thres - f64::from(c) / 100.0).abs() < 1e-12);
            }
        }
    }

    /// The lexer and parser never panic, whatever bytes arrive.
    #[test]
    fn parser_total_on_arbitrary_input(input in "\\PC{0,80}") {
        let _ = parse(&input); // Ok or Err — never a panic
    }

    /// Near-miss queries (random keyword soup) never panic either, and
    /// analysis is total on whatever parses.
    #[test]
    fn analysis_total_on_keyword_soup(
        words in proptest::collection::vec(
            prop::sample::select(vec![
                "SELECT", "TOP", "FRAMES", "WINDOWS", "OF", "SLIDE", "FROM",
                "Archie", "USING", "WITH", "CONFIDENCE", "5", "0.9", "(", ")",
                ",", "count", "car", "scan",
            ]),
            0..12,
        ),
    ) {
        let text = words.join(" ");
        if let Ok(Statement::Select(stmt)) = parse(&text) {
            let _ = analyze_select(&stmt, &SessionSettings::default());
        }
    }
}
