//! Cross-crate determinism: identical seeds must produce identical videos,
//! relations, and query answers — the property every experiment binary and
//! regression test relies on.

use everest::core::cleaner::CleanerConfig;
use everest::core::dist::DiscreteDist;
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::Everest;
use everest::core::semantics::{u_kranks, u_topk};
use everest::core::xtuple::UncertainRelation;
use everest::models::{counting_oracle, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::datasets::counting_datasets;
use everest::video::scene::{SceneConfig, SyntheticVideo};
use everest::video::VideoStore;

#[test]
fn same_seed_same_everything() {
    let build = || {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 1_000,
                ..ArrivalConfig::default()
            },
            5,
        );
        SyntheticVideo::new(SceneConfig::default(), tl, 5, 30.0)
    };
    let a = build();
    let b = build();
    assert_eq!(a.timeline().counts(), b.timeline().counts());
    for t in (0..1_000).step_by(111) {
        assert_eq!(a.frame(t), b.frame(t), "frame {t}");
    }
}

#[test]
fn different_seed_different_video() {
    let spec = &counting_datasets()[0];
    let mut spec_small = spec.clone();
    spec_small.n_frames = 500;
    spec_small.arrival.n_frames = 500;
    let a = spec_small.build(1);
    let b = spec_small.build(2);
    assert_ne!(a.timeline().counts(), b.timeline().counts());
}

#[test]
fn full_query_is_reproducible() {
    let run = || {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 1_200,
                ..ArrivalConfig::default()
            },
            37,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 37, 30.0);
        let o = InstrumentedOracle::new(counting_oracle(&v));
        let phase1 = Phase1Config {
            sample_frac: 0.1,
            sample_cap: 120,
            sample_min: 32,
            grid: HyperGrid::single(2, 12),
            train: TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
            conv_channels: vec![6, 12],
            threads: 4,
            ..Phase1Config::default()
        };
        let prepared = Everest::prepare(&v, &o, &phase1);
        let r = prepared.query_topk(&o, 5, 0.9, &CleanerConfig::default());
        (r.frames(), r.confidence, r.cleaned, r.iterations)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the full query trace");
}

#[test]
fn semantics_reruns_are_identical() {
    // The enumeration semantics iterate candidate-set maps; those maps are
    // BTreeMaps precisely so repeated runs (and ties) resolve identically.
    // Deliberately includes exact ties between items 0/1 and 2/3.
    let build = || {
        let mut rel = UncertainRelation::new(1.0, 4);
        for _ in 0..2 {
            rel.push_uncertain(DiscreteDist::from_masses(&[0.1, 0.1, 0.2, 0.3, 0.3]));
        }
        for _ in 0..2 {
            rel.push_uncertain(DiscreteDist::from_masses(&[0.3, 0.3, 0.2, 0.1, 0.1]));
        }
        rel.push_certain(2);
        rel
    };
    let (set_a, p_a) = u_topk(&build(), 2).expect("small world set");
    let (set_b, p_b) = u_topk(&build(), 2).expect("small world set");
    assert_eq!(set_a, set_b, "U-Top-K winner set must not depend on run");
    assert_eq!(p_a.to_bits(), p_b.to_bits(), "confidence must be bit-equal");
    let ranks_a = u_kranks(&build(), 2).expect("small world set");
    let ranks_b = u_kranks(&build(), 2).expect("small world set");
    assert_eq!(ranks_a, ranks_b, "U-kRanks winners must not depend on run");
}
