//! Failure injection and degenerate-input tests: the cleaner and skyline
//! loops must terminate and keep their structural invariants even when
//! the proxy model is garbage, scores tie everywhere, or parameters sit
//! at the edges of their ranges.

use everest::core::cleaner::{run_cleaner, CleanerConfig, FnCleaningOracle};
use everest::core::dist::DiscreteDist;
use everest::core::skyline::{run_skyline_cleaner, SkylineConfig, SkylineOracle, VectorRelation};
use everest::core::xtuple::{ItemId, UncertainRelation};

const MAX_B: usize = 10;

/// Truth table used throughout: item i's exact bucket.
fn truth(n: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * 7 + 3) % (MAX_B + 1)) as u32).collect()
}

fn exact_topk(truth: &[u32], k: usize) -> Vec<ItemId> {
    let mut ids: Vec<ItemId> = (0..truth.len()).collect();
    ids.sort_by(|&a, &b| truth[b].cmp(&truth[a]).then(a.cmp(&b)));
    ids.truncate(k);
    ids
}

/// A proxy that is *systematically wrong*: every item's distribution is a
/// near-point mass on the WRONG bucket (inverted scale).
fn adversarial_relation(truth: &[u32]) -> UncertainRelation {
    let mut rel = UncertainRelation::new(1.0, MAX_B);
    for &t in truth {
        let wrong = MAX_B as u32 - t; // inverted
        let mut masses = vec![0.001; MAX_B + 1]; // keep full support
        masses[wrong as usize] = 1.0;
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    rel
}

#[test]
fn cleaner_survives_a_lying_proxy() {
    let n = 60;
    let t = truth(n);
    let mut rel = adversarial_relation(&t);
    let mut oracle = FnCleaningOracle(|id: ItemId| t[id]);
    let cfg = CleanerConfig {
        k: 5,
        thres: 0.9,
        ..Default::default()
    };
    let out = run_cleaner(&mut rel, &mut oracle, &cfg);

    // Must terminate, converge (w.r.t. the *modeled* relation), and
    // return 5 certain items.
    assert!(out.converged);
    assert!(out.confidence >= 0.9);
    assert_eq!(out.topk.len(), 5);
    for &id in &out.topk {
        assert!(rel.is_certain(id), "certain-result condition");
        assert_eq!(rel.certain_bucket(id).unwrap(), t[id], "oracle scores only");
    }
    // IMPORTANT CAVEAT (documented, not a bug): the probabilistic
    // guarantee is *with respect to the modeled distributions*. A lying
    // proxy can drive the claimed confidence above thres while the answer
    // misses true top frames — the paper's guarantee presumes a CMDN
    // whose truncated support covers the truth. `tests/guarantee.rs`
    // verifies the statistical guarantee under calibrated proxies; this
    // test pins down the conditionality.
    let exact = exact_topk(&t, 5);
    let kth = t[*exact.last().unwrap()];
    let hits = out.topk.iter().filter(|&&id| t[id] >= kth).count();
    assert!(
        hits < 5,
        "a fully-inverted proxy should actually fool the engine here \
         (if this starts passing, the test setup lost its teeth)"
    );
}

#[test]
fn lying_proxy_costs_work_but_not_correctness() {
    // The same query with an honest proxy cleans far fewer items.
    let n = 60;
    let t = truth(n);

    let mut lying = adversarial_relation(&t);
    let mut honest = UncertainRelation::new(1.0, MAX_B);
    for &b in &t {
        let mut masses = vec![0.001; MAX_B + 1];
        masses[b as usize] = 1.0;
        honest.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    let cfg = CleanerConfig {
        k: 5,
        thres: 0.9,
        ..Default::default()
    };
    let mut o1 = FnCleaningOracle(|id: ItemId| t[id]);
    let out_lying = run_cleaner(&mut lying, &mut o1, &cfg);
    let mut o2 = FnCleaningOracle(|id: ItemId| t[id]);
    let out_honest = run_cleaner(&mut honest, &mut o2, &cfg);

    assert!(out_honest.cleaned <= out_lying.cleaned);
    // the honest proxy's answer is exactly right (its point masses are
    // calibrated), and it needs only about K cleanings
    let kth = t[*exact_topk(&t, 5).last().unwrap()];
    for &id in &out_honest.topk {
        assert!(t[id] >= kth);
    }
    assert!(
        out_honest.cleaned <= 10,
        "honest proxy cleaned {}",
        out_honest.cleaned
    );
}

#[test]
fn all_ties_relation_terminates() {
    // Every item has the same score: any K certain items are a valid
    // answer, and the threshold is reached once ties stop mattering
    // (frames tying the threshold are allowed by Eq. 2's ≤).
    let n = 40;
    let mut rel = UncertainRelation::new(1.0, MAX_B);
    for _ in 0..n {
        let mut masses = vec![0.0; MAX_B + 1];
        masses[4] = 0.8;
        masses[5] = 0.2;
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    let mut oracle = FnCleaningOracle(|_| 4u32);
    let out = run_cleaner(
        &mut rel,
        &mut oracle,
        &CleanerConfig {
            k: 10,
            thres: 0.95,
            ..Default::default()
        },
    );
    assert!(out.converged);
    assert_eq!(out.topk.len(), 10);
    assert!(out.cleaned <= n);
}

#[test]
fn k_equals_n_cleans_everything_and_reaches_certainty() {
    let n = 25;
    let t = truth(n);
    let mut rel = adversarial_relation(&t);
    let mut oracle = FnCleaningOracle(|id: ItemId| t[id]);
    let out = run_cleaner(
        &mut rel,
        &mut oracle,
        &CleanerConfig {
            k: n,
            thres: 0.99,
            ..Default::default()
        },
    );
    assert!(out.converged);
    assert_eq!(out.topk.len(), n);
    assert_eq!(out.cleaned, n, "K = n forces full cleaning");
    assert_eq!(out.confidence, 1.0, "no uncertainty remains");
}

#[test]
fn k_equals_one_with_extreme_threshold() {
    let n = 50;
    let t = truth(n);
    let mut rel = adversarial_relation(&t);
    let mut oracle = FnCleaningOracle(|id: ItemId| t[id]);
    let out = run_cleaner(
        &mut rel,
        &mut oracle,
        &CleanerConfig {
            k: 1,
            thres: 0.999,
            ..Default::default()
        },
    );
    assert!(out.converged);
    assert!(out.confidence >= 0.999);
    assert_eq!(t[out.topk[0]], *t.iter().max().unwrap());
}

#[test]
fn max_cleanings_zero_reports_non_convergence_immediately() {
    let n = 30;
    let t = truth(n);
    let mut rel = adversarial_relation(&t);
    let mut oracle = FnCleaningOracle(|_| panic!("budget 0 must never call the oracle"));
    let out = run_cleaner(
        &mut rel,
        &mut oracle,
        &CleanerConfig {
            k: 3,
            thres: 0.9,
            max_cleanings: Some(0),
            ..Default::default()
        },
    );
    assert!(!out.converged);
    assert_eq!(out.cleaned, 0);
}

#[test]
fn batch_size_larger_than_relation_is_safe() {
    let n = 10;
    let t = truth(n);
    let mut rel = adversarial_relation(&t);
    let mut oracle = FnCleaningOracle(|id: ItemId| t[id]);
    let out = run_cleaner(
        &mut rel,
        &mut oracle,
        &CleanerConfig {
            k: 2,
            thres: 0.9,
            batch_size: 1_000,
            ..Default::default()
        },
    );
    assert!(out.converged);
    assert!(out.cleaned <= n);
}

// ---- skyline under attack ----

struct TableSkyOracle {
    truth: Vec<Vec<u32>>,
}

impl SkylineOracle for TableSkyOracle {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>> {
        items.iter().map(|&i| self.truth[i].clone()).collect()
    }
}

#[test]
fn skyline_survives_a_lying_proxy() {
    let n = 30;
    let max_b = 6usize;
    let truth: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            vec![
                ((i * 5 + 1) % (max_b + 1)) as u32,
                ((i * 3 + 2) % (max_b + 1)) as u32,
            ]
        })
        .collect();
    let mut rel = VectorRelation::new(vec![max_b, max_b]);
    for v in &truth {
        // inverted near-point masses with full support
        let dist = |wrong: u32| {
            let mut masses = vec![0.002; max_b + 1];
            masses[wrong as usize] = 1.0;
            DiscreteDist::from_masses(&masses)
        };
        rel.push_uncertain(vec![dist(max_b as u32 - v[0]), dist(max_b as u32 - v[1])]);
    }
    let mut oracle = TableSkyOracle {
        truth: truth.clone(),
    };
    let out = run_skyline_cleaner(
        &mut rel,
        &mut oracle,
        &SkylineConfig {
            thres: 0.9,
            batch_size: 4,
            max_cleanings: None,
        },
    );
    assert!(out.converged);
    assert!(out.confidence >= 0.9);
    // no returned member may be dominated by ANY true vector
    for &id in &out.skyline {
        for v in &truth {
            assert!(
                !everest::core::skyline::dominates(v, &truth[id]),
                "answer member {id} is dominated under ground truth"
            );
        }
    }
}

#[test]
fn window_oracle_clamps_out_of_grid_scores() {
    use everest::core::cleaner::CleaningOracle;
    use everest::core::window::{tumbling_windows, WindowCleaningOracle};
    use everest::models::ExactScoreOracle;

    // Scores far beyond the bucket grid must clamp, not panic.
    let scores: Vec<f64> = (0..30).map(|i| 1e6 + i as f64).collect();
    let oracle = ExactScoreOracle::new("huge", scores, 0.01);
    let ws = tumbling_windows(30, 10);
    let mut wo = WindowCleaningOracle::new(&oracle, &ws, 1.0, 1.0, 8, 1);
    let buckets = wo.clean_batch(&[0, 1, 2]);
    assert!(
        buckets.iter().all(|&b| b == 8),
        "clamped to max bucket: {buckets:?}"
    );
}

#[test]
fn negative_scores_clamp_to_bucket_zero() {
    use everest::core::cleaner::CleaningOracle;
    use everest::core::window::{tumbling_windows, WindowCleaningOracle};
    use everest::models::ExactScoreOracle;

    let scores: Vec<f64> = (0..20).map(|i| -5.0 - i as f64).collect();
    let oracle = ExactScoreOracle::new("negative", scores, 0.01);
    let ws = tumbling_windows(20, 5);
    let mut wo = WindowCleaningOracle::new(&oracle, &ws, 1.0, 1.0, 8, 1);
    let buckets = wo.clean_batch(&[0, 1]);
    assert!(
        buckets.iter().all(|&b| b == 0),
        "clamped to zero: {buckets:?}"
    );
}

#[test]
fn truncated_or_mangled_ingest_files_error_instead_of_panicking() {
    use everest::core::ingest::{IngestError, IngestIndex};
    use everest::core::phase1::Phase1Config;
    use everest::core::pipeline::Everest;
    use everest::models::counting_oracle;
    use everest::nn::train::TrainConfig;
    use everest::nn::HyperGrid;
    use everest::video::arrival::{ArrivalConfig, Timeline};
    use everest::video::scene::{SceneConfig, SyntheticVideo};

    let tl = Timeline::generate(
        &ArrivalConfig {
            n_frames: 600,
            ..ArrivalConfig::default()
        },
        31,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), tl, 31, 30.0);
    let oracle = counting_oracle(&video);
    let prepared = Everest::prepare(
        &video,
        &oracle,
        &Phase1Config {
            sample_frac: 0.2,
            sample_cap: 80,
            sample_min: 32,
            grid: HyperGrid::single(2, 8),
            train: TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
            conv_channels: vec![4],
            threads: 2,
            ..Phase1Config::default()
        },
    );
    let index = IngestIndex::from_prepared("victim", &prepared);
    let mut json = Vec::new();
    index.write_to(&mut json).unwrap();

    // Truncations at various depths: every one must be a Format error.
    for frac in [0.1, 0.5, 0.9, 0.999] {
        let cut = (json.len() as f64 * frac) as usize;
        match IngestIndex::read_from(&json[..cut]) {
            Err(IngestError::Format(_)) => {}
            other => panic!("truncation at {frac} gave {other:?}"),
        }
    }

    // Byte-level mangling of the middle of the document: either a Format
    // error (broken JSON) or an Integrity error (parsed but inconsistent)
    // is acceptable; a panic or a silently-wrong PreparedVideo is not.
    let mut mangled = json.clone();
    let mid = mangled.len() / 2;
    for b in &mut mangled[mid..mid + 64] {
        *b = b'9';
    }
    match IngestIndex::read_from(mangled.as_slice()) {
        Err(_) => {}
        Ok(parsed) => {
            // If it still parses, validation or conversion must catch it —
            // or the data happened to stay consistent (numeric field
            // overwritten with digits); in that case the restored pipeline
            // must still be structurally sound.
            match parsed.into_prepared() {
                Err(_) => {}
                Ok(p) => {
                    assert_eq!(
                        p.phase1.relation.len(),
                        p.phase1.segments.num_retained(),
                        "structurally inconsistent index slipped through"
                    );
                }
            }
        }
    }

    // Empty input.
    assert!(matches!(
        IngestIndex::read_from(&b""[..]),
        Err(IngestError::Format(_))
    ));
}
