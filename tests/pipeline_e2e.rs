//! End-to-end integration: the full Everest pipeline (difference detector →
//! CMDN → uncertain relation → oracle-in-the-loop cleaning) against the
//! baselines, on a small synthetic traffic video.
//!
//! Phase 1 (CMDN training) dominates the suite's cost, so the tests share
//! two `PreparedVideo`s — one 3 000-frame and one 2 500-frame video — via
//! `OnceLock` instead of re-training per test. Each test runs its own
//! Phase-2 queries against a fresh instrumented oracle, so oracle counters
//! stay per-test.

use everest::core::baselines::{cheap_scan, cmdn_only, scan_and_test};
use everest::core::cleaner::CleanerConfig;
use everest::core::metrics::{evaluate_topk, GroundTruth};
use everest::core::phase1::Phase1Config;
use everest::core::pipeline::{Everest, PreparedVideo};
use everest::core::sim::component;
use everest::models::{counting_oracle, HogScorer, InstrumentedOracle};
use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::{SceneConfig, SyntheticVideo};
use everest::video::VideoStore;
use std::sync::OnceLock;

static PREPARED_3K: OnceLock<(SyntheticVideo, PreparedVideo)> = OnceLock::new();
static PREPARED_2K5: OnceLock<(SyntheticVideo, PreparedVideo)> = OnceLock::new();

fn build(n_frames: usize, seed: u64) -> (SyntheticVideo, PreparedVideo) {
    let tl = Timeline::generate(
        &ArrivalConfig {
            n_frames,
            base_intensity: 3.5,
            diurnal_amplitude: 0.7,
            burst_rate_per_10k: 8.0,
            burst_boost: 3.0,
            ..ArrivalConfig::default()
        },
        seed,
    );
    let v = SyntheticVideo::new(SceneConfig::default(), tl, seed, 30.0);
    let o = InstrumentedOracle::new(counting_oracle(&v));
    let prepared = Everest::prepare(&v, &o, &phase1_cfg());
    (v, prepared)
}

/// The 3 000-frame fixture (one Phase 1 for every test that uses it),
/// plus a fresh per-test oracle with isolated counters.
fn setup_3k() -> (
    &'static SyntheticVideo,
    &'static PreparedVideo,
    InstrumentedOracle<everest::models::ExactScoreOracle>,
) {
    let (video, prepared) = PREPARED_3K.get_or_init(|| build(3_000, 11));
    let oracle = InstrumentedOracle::new(counting_oracle(video));
    (video, prepared, oracle)
}

/// The 2 500-frame fixture.
fn setup_2k5() -> (
    &'static SyntheticVideo,
    &'static PreparedVideo,
    InstrumentedOracle<everest::models::ExactScoreOracle>,
) {
    let (video, prepared) = PREPARED_2K5.get_or_init(|| build(2_500, 17));
    let oracle = InstrumentedOracle::new(counting_oracle(video));
    (video, prepared, oracle)
}

fn phase1_cfg() -> Phase1Config {
    Phase1Config {
        sample_frac: 0.15,
        sample_cap: 450,
        sample_min: 200,
        grid: HyperGrid::single(5, 24),
        train: TrainConfig {
            epochs: 25,
            batch_size: 32,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16, 32],
        threads: 4,
        ..Phase1Config::default()
    }
}

#[test]
fn everest_beats_scan_and_test_with_high_precision() {
    let (video, prepared, oracle) = setup_3k();
    let report = prepared.query_topk(&oracle, 10, 0.9, &CleanerConfig::default());

    assert!(report.converged);
    assert!(report.confidence >= 0.9);

    // Quality versus exact ground truth over the whole video.
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    let quality = evaluate_topk(&truth, &report.frames(), 10);
    // The guarantee is exact w.r.t. the proxy's distributions; empirical
    // precision tracks it as closely as CMDN calibration allows. At this
    // scale the CMDN sees only ~450 labelled frames (the paper: 30 000), so
    // the bound here is looser; full-scale precision is measured by the
    // Figure 4 experiment binary.
    assert!(quality.precision >= 0.6, "precision {}", quality.precision);
    assert!(
        quality.score_error <= 2.0,
        "score error {}",
        quality.score_error
    );

    // Simulated speedup over the naive baseline.
    let scan = scan_and_test(oracle.inner(), 10);
    let speedup = scan.sim_seconds / report.sim_seconds();
    assert!(speedup > 2.0, "expected a clear speedup, got {speedup:.2}×");

    // The oracle was invoked on a small fraction of frames only:
    // Phase-1 labels (certain items of D0) plus Phase-2 confirmations.
    let oracle_touched = prepared.phase1.relation.num_certain() + report.oracle_frames;
    let frac = oracle_touched as f64 / video.num_frames() as f64;
    assert!(frac < 0.3, "oracle touched {frac:.2} of the video");
}

#[test]
fn latency_breakdown_shape_matches_table8() {
    let (_video, prepared, oracle) = setup_3k();
    let report = prepared.query_topk(&oracle, 10, 0.9, &CleanerConfig::default());

    let clock = &report.clock;
    // Phase 1 dominates (Table 8: ≥ 80%); our scaled ratio is looser but
    // Phase 1 must still be the bulk of the cost.
    let phase1 = clock.component(component::LABEL)
        + clock.component(component::TRAIN)
        + clock.component(component::POPULATE);
    assert!(
        phase1 / clock.total() > 0.5,
        "phase 1 should dominate: {:.2}",
        phase1 / clock.total()
    );
    // Select-candidate's algorithmic overhead is negligible (paper: ≤ 0.41%).
    assert!(
        clock.fraction(component::SELECT) < 0.05,
        "select-candidate overhead {:.4}",
        clock.fraction(component::SELECT)
    );
    // Confirmations happen but stay small.
    assert!(clock.component(component::CONFIRM) > 0.0);
}

#[test]
fn everest_beats_baselines_on_quality() {
    let (_video, prepared, oracle) = setup_2k5();
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    let k = 15;

    let everest = prepared.query_topk(&oracle, k, 0.9, &CleanerConfig::default());
    let q_everest = evaluate_topk(&truth, &everest.frames(), k);

    let hog = cheap_scan(&HogScorer::new(oracle.inner().clone(), 3), k);
    let q_hog = evaluate_topk(&truth, &hog.topk, k);

    let cmdn = cmdn_only(prepared, k);
    let q_cmdn = evaluate_topk(&truth, &cmdn.topk, k);

    assert!(
        q_everest.precision > q_hog.precision,
        "everest {} vs hog {}",
        q_everest.precision,
        q_hog.precision
    );
    // At this toy scale tie groups are wide, so CMDN-only can score well
    // under tie-aware precision; Everest must never be worse (the full-scale
    // separation is exercised by the Figure 4 experiment binary).
    assert!(
        q_everest.precision >= q_cmdn.precision,
        "everest {} vs cmdn-only {}",
        q_everest.precision,
        q_cmdn.precision
    );
    assert!(q_everest.score_error <= q_hog.score_error);
}

#[test]
fn smaller_k_converges_faster() {
    // §4.2.1: smaller K ⇒ higher threshold score ⇒ earlier stop.
    let (_video, prepared, oracle) = setup_2k5();
    let small = prepared.query_topk(&oracle, 3, 0.9, &CleanerConfig::default());
    let large = prepared.query_topk(&oracle, 40, 0.9, &CleanerConfig::default());
    assert!(
        small.cleaned <= large.cleaned,
        "K=3 cleaned {} > K=40 cleaned {}",
        small.cleaned,
        large.cleaned
    );
}
