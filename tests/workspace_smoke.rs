//! Workspace wiring smoke test: drives the `everest::prelude` re-exports
//! end-to-end on a tiny (≤ 200-frame) synthetic video, so a facade or
//! re-export regression fails fast without the cost of the full e2e suites.

use everest::prelude::*;

use everest::nn::train::TrainConfig;
use everest::nn::HyperGrid;
use everest::video::arrival::{ArrivalConfig, Timeline};
use everest::video::scene::SceneConfig;

const N_FRAMES: usize = 200;

fn tiny_video() -> SyntheticVideo {
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames: N_FRAMES,
            ..ArrivalConfig::default()
        },
        123,
    );
    SyntheticVideo::new(SceneConfig::default(), timeline, 123, 30.0)
}

#[test]
fn prelude_pipeline_end_to_end() {
    // Video substrate via prelude types (SyntheticVideo, VideoStore, Frame).
    let video = tiny_video();
    assert_eq!(video.num_frames(), N_FRAMES);
    let frame: Frame = video.frame(0);
    assert!(frame.width() > 0 && frame.height() > 0);

    // Oracle wiring (Oracle, InstrumentedOracle, counting_oracle).
    let oracle = InstrumentedOracle::new(counting_oracle(&video));
    assert_eq!(oracle.frames_scored(), 0);

    // Phase 1 + a Top-3 query through the prelude's pipeline types.
    let phase1 = Phase1Config {
        sample_frac: 0.3,
        sample_cap: 60,
        sample_min: 24,
        grid: HyperGrid::single(2, 8),
        train: TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
        conv_channels: vec![4],
        threads: 2,
        ..Phase1Config::default()
    };
    let prepared: PreparedVideo = Everest::prepare(&video, &oracle, &phase1);
    let report: QueryReport = prepared.query_topk(&oracle, 3, 0.9, &CleanerConfig::default());

    assert_eq!(report.items.len(), 3, "Top-3 answer must have 3 items");
    assert!(report.confidence >= 0.9, "confidence {}", report.confidence);
    assert!(report.frames().iter().all(|&f| f < N_FRAMES));
    assert!(
        oracle.frames_scored() > 0,
        "the oracle must have been consulted"
    );

    // Result quality plumbing (GroundTruth, evaluate_topk, ResultQuality).
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    let quality: ResultQuality = evaluate_topk(&truth, &report.frames(), 3);
    assert!((0.0..=1.0).contains(&quality.precision));
}

#[test]
fn prelude_uncertain_relation_types() {
    // Core uncertain-relation types re-exported through the prelude.
    let mut rel = UncertainRelation::new(1.0, 4);
    let certain: ItemId = rel.push_certain(3);
    let uncertain: ItemId =
        rel.push_uncertain(DiscreteDist::from_masses(&[0.2, 0.8, 0.0, 0.0, 0.0]));
    assert_ne!(certain, uncertain);
    assert_eq!(rel.len(), 2);
}

#[test]
fn prelude_evql_session() {
    // EVQL session wiring (EvqlSession/EvqlOutput aliases): a catalog
    // statement that needs no video preparation.
    let mut session = EvqlSession::new();
    match session.execute("SHOW DATASETS") {
        Ok(EvqlOutput::Message(m)) => {
            assert!(
                m.contains("Archie"),
                "catalog listing should name Archie: {m}"
            )
        }
        other => panic!("SHOW DATASETS should yield a message, got {other:?}"),
    }
    // Malformed input surfaces a spanned error, not a panic.
    assert!(session.execute("SELECT TOP").is_err());
}
