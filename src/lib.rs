//! # Everest — Top-K Deep Video Analytics: A Probabilistic Approach
//!
//! A from-scratch Rust reproduction of the Everest system (SIGMOD 2021):
//! Top-K queries over video with **probabilistic guarantees** under
//! possible-world semantics, powered by CNN specialization (a convolutional
//! mixture density network proxy) and oracle-in-the-loop uncertain data
//! cleaning.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`everest-core`) — the paper's contribution: uncertain Top-K
//!   query processing, Phase 1/Phase 2 pipeline, windows, guarantees.
//! * [`video`] (`everest-video`) — synthetic video substrate (datasets,
//!   difference detector, decode cost model, Visual Road, dashcams).
//! * [`nn`] (`everest-nn`) — pure-Rust convolutional mixture density network.
//! * [`models`] (`everest-models`) — simulated deep-model oracles, object
//!   tracker, video relation, classic baseline scorers.
//! * [`evql`] (`everest-evql`) — the declarative Top-K query language
//!   (§5's FrameQL-style integration) and the `everest-cli` shell.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![deny(unsafe_code)]

pub use everest_core as core;
pub use everest_evql as evql;
pub use everest_models as models;
pub use everest_nn as nn;
pub use everest_video as video;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use everest_core::prelude::*;
    pub use everest_evql::{Output as EvqlOutput, Session as EvqlSession};
    pub use everest_models::{counting_oracle, InstrumentedOracle, Oracle};
    pub use everest_video::{DatasetSpec, Frame, SyntheticVideo, VideoStore};
}
