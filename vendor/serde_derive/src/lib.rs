//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The container this workspace builds in has no crates.io access, so
//! `syn`/`quote` are unavailable; instead the item is parsed directly from
//! the `proc_macro` token stream. Supported shapes — the ones this
//! workspace actually derives on:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which
//!   are omitted on serialize and `Default`-initialized on deserialize);
//! * tuple structs (newtypes serialize transparently);
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde: `"Variant"` / `{"Variant": ...}`);
//! * the container attribute `#[serde(from = "T", into = "T")]`.
//!
//! Generic containers are not supported and produce a compile error.

#![deny(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ----

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

// ---- attribute helpers ----

/// Extracts `skip` / `from = "..."` / `into = "..."` from one `#[...]`
/// attribute group, ignoring every non-serde attribute.
fn scan_attr(
    group_tokens: TokenStream,
    skip: &mut bool,
    from: &mut Option<String>,
    into: &mut Option<String>,
) {
    let mut iter = group_tokens.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    // The serde attrs used in this workspace have no nested commas, so a
    // flat split on the stringified stream is sufficient.
    let text = inner.to_string();
    for part in text.split(',') {
        let part = part.trim();
        if part == "skip" {
            *skip = true;
        } else if let Some(rest) = part.strip_prefix("from") {
            if let Some(ty) = parse_eq_string(rest) {
                *from = Some(ty);
            }
        } else if let Some(rest) = part.strip_prefix("into") {
            if let Some(ty) = parse_eq_string(rest) {
                *into = Some(ty);
            }
        }
    }
}

/// Parses ` = "Some<Type>"` into `Some<Type>`.
fn parse_eq_string(rest: &str) -> Option<String> {
    let rest = rest.trim().strip_prefix('=')?.trim();
    let rest = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some(rest.to_string())
}

/// Consumes leading attributes from `tokens[*pos..]`; returns whether any
/// consumed attribute was `#[serde(skip)]` (and records from/into).
fn consume_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    from: &mut Option<String>,
    into: &mut Option<String>,
) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                // `#!` inner attributes don't occur in item position; the
                // next token is the bracket group.
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    scan_attr(g.stream(), &mut skip, from, into);
                    *pos += 1;
                } else {
                    return skip;
                }
            }
            _ => return skip,
        }
    }
}

/// Skips a `pub` / `pub(crate)` / `pub(in ...)` visibility marker.
fn consume_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips one type expression (everything until a top-level `,`), tracking
/// `<`/`>` nesting. Bracketed groups arrive pre-balanced from the lexer.
fn consume_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple-variant / tuple-struct parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < tokens.len() {
        let mut ignored_from = None;
        let mut ignored_into = None;
        consume_attrs(&tokens, &mut pos, &mut ignored_from, &mut ignored_into);
        consume_vis(&tokens, &mut pos);
        consume_type(&tokens, &mut pos);
        count += 1;
        // consume_type stops at the separating comma (or end).
        if pos < tokens.len() {
            pos += 1;
            if pos == tokens.len() {
                break; // trailing comma
            }
        }
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut ignored_from = None;
        let mut ignored_into = None;
        let skip = consume_attrs(&tokens, &mut pos, &mut ignored_from, &mut ignored_into);
        consume_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected ':' after field `{name}`, found {other:?}"
                ))
            }
        }
        consume_type(&tokens, &mut pos);
        fields.push(Field { name, skip });
        if pos < tokens.len() {
            pos += 1; // the comma consume_type stopped at
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let mut ignored_from = None;
        let mut ignored_into = None;
        consume_attrs(&tokens, &mut pos, &mut ignored_from, &mut ignored_into);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                pos += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                while let Some(tok) = tokens.get(pos) {
                    if let TokenTree::Punct(p) = tok {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    pos += 1;
                }
            }
        }
        variants.push(Variant { name, shape });
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    let mut from_ty = None;
    let mut into_ty = None;
    consume_attrs(&tokens, &mut pos, &mut from_ty, &mut into_ty);
    consume_vis(&tokens, &mut pos);
    let kind_kw = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde shim derive does not support generic containers (`{name}`)"
            ));
        }
    }
    let kind = match kind_kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item {
        name,
        kind,
        from_ty,
        into_ty,
    })
}

// ---- code generation ----

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into_ty {
        format!(
            "let proxy: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = &f.name;
                    s.push_str(&format!(
                        "fields.push((::std::string::String::from(\"{fname}\"), ::serde::Serialize::to_value(&self.{fname})));\n"
                    ));
                }
                s.push_str("::serde::value::Value::Object(fields)");
                s
            }
            ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            ItemKind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::value::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
            ItemKind::UnitStruct => "::serde::value::Value::Null".to_string(),
            ItemKind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => arms.push_str(&format!(
                            "{name}::{vname} => ::serde::value::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::value::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            arms.push_str(&format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),\n",
                                binds.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Object(::std::vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_named_fields_ctor(type_path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!(
                "{fname}: match {source}.iter().find(|kv| kv.0 == \"{fname}\") {{\n\
                     ::core::option::Option::Some(kv) => ::serde::Deserialize::from_value(&kv.1)?,\n\
                     ::core::option::Option::None => return ::core::result::Result::Err(::serde::DeError::custom(\"missing field `{fname}` in {type_path}\")),\n\
                 }},\n"
            ));
        }
    }
    format!("{type_path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.from_ty {
        format!(
            "let proxy: {from} = ::serde::Deserialize::from_value(v)?;\n\
             ::core::result::Result::Ok(::core::convert::Into::into(proxy))"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                let ctor = gen_named_fields_ctor(name, fields, "obj");
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object ({name})\", v))?;\n\
                     ::core::result::Result::Ok({ctor})"
                )
            }
            ItemKind::TupleStruct(1) => {
                format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            ItemKind::TupleStruct(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array ({name})\", v))?;\n\
                     if items.len() != {n} {{\n\
                         return ::core::result::Result::Err(::serde::DeError::custom(\"wrong tuple length for {name}\"));\n\
                     }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    gets.join(", ")
                )
            }
            ItemKind::UnitStruct => format!("::core::result::Result::Ok({name})"),
            ItemKind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantShape::Tuple(1) => data_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array ({name}::{vname})\", payload))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::core::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\"));\n\
                                     }}\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n\
                                 }},\n",
                                gets.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let ctor = gen_named_fields_ctor(
                                &format!("{name}::{vname}"),
                                fields,
                                "obj",
                            );
                            data_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let obj = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object ({name}::{vname})\", payload))?;\n\
                                     ::core::result::Result::Ok({ctor})\n\
                                 }},\n"
                            ));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                         ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\
                             other => ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }},\n\
                         ::serde::value::Value::Object(fields) if fields.len() == 1 => {{\n\
                             let (tag, payload) = &fields[0];\n\
                             match tag.as_str() {{\n\
                                 {data_arms}\
                                 other => ::core::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }}\n\
                         }},\n\
                         other => ::core::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
