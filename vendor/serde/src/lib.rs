//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer`
//! machinery, this shim routes everything through a single JSON-like
//! [`value::Value`] tree: `Serialize` lowers a type to a `Value`,
//! `Deserialize` raises it back. The companion `serde_json` shim prints
//! and parses that tree, and `serde_derive` generates the impls for
//! `#[derive(Serialize, Deserialize)]`, including the `#[serde(skip)]`
//! and `#[serde(from = "...", into = "...")]` attributes used here.

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// A JSON-like data tree, the interchange format of this shim.
    ///
    /// Integers are kept separate from floats (`i128` covers the full
    /// `u64`/`i64` range) so integer fields round-trip exactly.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i128),
        Float(f64),
        Str(String),
        Array(Vec<Value>),
        /// Insertion-ordered object; lookups are linear, which is fine
        /// for the struct sizes this workspace serializes.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        /// Human-readable kind name for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }
}

use value::Value;

/// Deserialization error (also reused by `serde_json` for parse errors).
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            msg: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            // Non-finite floats are printed as JSON null; read them back
            // as NaN rather than failing the whole document.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into a borrowed `&'static str` (used by catalog
    /// structs whose names are compile-time constants) leaks the string;
    /// acceptable for the load-once catalog/config paths this serves.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::leak(String::from_value(v)?.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple array", v))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| {
                let key = k
                    .parse()
                    .map_err(|_| DeError::custom(format!("unparseable map key {k:?}")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = f64::from_value(v)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(DeError::custom(format!("invalid duration seconds {secs}")));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}
