//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion`, `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm-up, then a fixed wall-clock
//! budget of timed batches, reporting the median batch time per iteration.
//! Measurement only happens under `cargo bench` (cargo passes `--bench` to
//! `harness = false` bench targets); any other invocation — notably
//! `cargo test`, which runs bench targets with no mode flag — executes
//! every benchmark body exactly once, so bench code is exercised in CI
//! without the timing loops.
//!
//! In measurement mode every median is additionally persisted as JSON to
//! `target/bench_medians/<bench-binary>.json` (override the directory
//! with `BENCH_MEDIANS_DIR`), one flat `{"label": ns_per_iter}` object
//! per bench binary. The `bench_diff` tool in `everest-bench` diffs those
//! files against the committed `bench_baseline.json` so perf PRs can
//! prove their wins.

#![deny(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `incremental/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    /// `Some(elapsed, iters)` after `iter` has run in measurement mode.
    result: Option<(Duration, u64)>,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up + iteration-count calibration: aim each timed batch at
        // roughly 5ms so short kernels get enough iterations to resolve.
        let mut iters_per_batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch = iters_per_batch.saturating_mul(2);
        }
        // Timed batches within a fixed budget; median is robust to noise.
        let mut batches: Vec<Duration> = Vec::new();
        let budget = Instant::now();
        while batches.len() < 11 && budget.elapsed() < Duration::from_millis(300) {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            batches.push(start.elapsed());
        }
        batches.sort();
        let median = batches[batches.len() / 2];
        self.result = Some((median, iters_per_batch));
    }
}

/// Medians collected in measurement mode, flushed by `criterion_main!`
/// via [`write_medians`].
static MEDIANS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn report(label: &str, result: Option<(Duration, u64)>, test_mode: bool) {
    match result {
        Some(_) if test_mode => println!("bench {label}: ok (test mode)"),
        Some((elapsed, iters)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let formatted = if ns < 1_000.0 {
                format!("{ns:.1} ns")
            } else if ns < 1_000_000.0 {
                format!("{:.2} µs", ns / 1_000.0)
            } else {
                format!("{:.2} ms", ns / 1_000_000.0)
            };
            println!("bench {label:<50} {formatted}/iter");
            MEDIANS
                .lock()
                .expect("medians lock")
                .push((label.to_string(), ns));
        }
        None => println!("bench {label}: no measurement (b.iter never called)"),
    }
}

/// The current bench binary's name with cargo's `-<hash>` suffix stripped
/// (e.g. `extensions-0f2a51c9d3e47b68` → `extensions`).
fn bench_binary_stem() -> String {
    let stem = std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((head, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            head.to_string()
        }
        _ => stem,
    }
}

/// Writes all medians measured by this process to
/// `target/bench_medians/<bench-binary>.json` (or `$BENCH_MEDIANS_DIR`),
/// sorted by label for deterministic diffs. No-op when nothing was
/// measured (test mode). Called by `criterion_main!` after all groups.
pub fn write_medians() {
    let mut medians = MEDIANS.lock().expect("medians lock").clone();
    if medians.is_empty() {
        return;
    }
    medians.sort_by(|a, b| a.0.cmp(&b.0));
    let dir =
        std::env::var("BENCH_MEDIANS_DIR").unwrap_or_else(|_| "target/bench_medians".to_string());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("criterion shim: cannot create {dir}: {e}");
        return;
    }
    // Flat JSON object; labels are usually plain ASCII bench ids, but
    // escape per the JSON grammar (not Rust's escape_default, whose
    // \u{..} form JSON parsers reject).
    let mut json = String::from("{\n");
    for (i, (label, ns)) in medians.iter().enumerate() {
        let mut escaped = String::with_capacity(label.len());
        for c in label.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        json.push_str(&format!("  \"{escaped}\": {ns:?}"));
        json.push_str(if i + 1 == medians.len() { "\n" } else { ",\n" });
    }
    json.push_str("}\n");
    let path = format!("{dir}/{}.json", bench_binary_stem());
    match std::fs::write(&path, json) {
        Ok(()) => println!("medians written to {path}"),
        Err(e) => eprintln!("criterion shim: cannot write {path}: {e}"),
    }
}

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Only `cargo bench` passes `--bench` to harness=false bench
        // binaries; `cargo test` runs them with no mode flag. Measure only
        // under `cargo bench`, run-once everywhere else.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            result: None,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(label, b.result, self.test_mode);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            result: None,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.result,
            self.test_mode,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            result: None,
            test_mode: self.test_mode,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.result,
            self.test_mode,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_medians();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_file_round_trips() {
        let dir = std::env::temp_dir().join("criterion_shim_medians_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("BENCH_MEDIANS_DIR", &dir);
        {
            let mut medians = MEDIANS.lock().unwrap();
            medians.push(("group/label/64".to_string(), 123.5));
            // non-ASCII and apostrophes must stay valid JSON (raw UTF-8)
            medians.push(("group/µs'path".to_string(), 1.0));
        }
        write_medians();
        std::env::remove_var("BENCH_MEDIANS_DIR");
        MEDIANS.lock().unwrap().clear();
        let file = dir.join(format!("{}.json", bench_binary_stem()));
        let json = std::fs::read_to_string(&file).expect("medians file written");
        assert!(json.contains("\"group/label/64\": 123.5"), "{json}");
        assert!(json.contains("\"group/µs'path\": 1.0"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true };
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("captures", |b| {
            b.iter(|| ran = true);
        });
        assert!(ran);
    }
}
