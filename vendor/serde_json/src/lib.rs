//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_writer`, `from_str`, `from_reader`, and an [`Error`]
//! type. Prints and parses the `serde` shim's [`Value`] tree as standard
//! JSON (UTF-8, `\uXXXX` escapes, exact integer round-trips, shortest
//! round-trip floats via `{:?}`).

#![deny(unsafe_code)]

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::io::{Read, Write};

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("I/O: {e}"))
    }
}

// ---- serialization ----

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting and
                // always includes a `.` or exponent, keeping the value a
                // float on re-parse.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; serde's f64 impl reads null
                // back as NaN.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-path over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.consume_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer overflow"))
        }
    }
}

/// Parses a JSON document into a raw [`Value`] tree.
pub fn value_from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    Ok(T::from_value(&value_from_str(input)?)?)
}

pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.25), ("b".into(), -0.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_exact() {
        for &x in &[0.1f64, 1e-300, std::f64::consts::PI, f64::MAX, 5e-324] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "roundtrip failed for {x}");
        }
        for &x in &[0.1f32, 1e-40f32, f32::MAX] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, x, "f32 roundtrip failed for {x}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
        let s = "control\u{1}char";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
