//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a non-poisoning [`Mutex`]. Backed by `std::sync::Mutex`; a poisoned
//! lock is recovered transparently, matching parking_lot's semantics of
//! never poisoning.

#![deny(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
