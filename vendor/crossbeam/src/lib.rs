//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{bounded, Sender, Receiver}`. Backed by
//! `std::sync::mpsc::sync_channel`, which provides the same bounded
//! backpressure semantics for the single-producer/single-consumer
//! prefetcher in `everest-core`.

#![deny(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full (bounded backpressure).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }
}
