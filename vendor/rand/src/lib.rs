//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, the `Rng`/`SeedableRng` traits, and
//! `seq::SliceRandom`.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be fetched; this shim keeps the public surface identical
//! for the call sites in the workspace. `StdRng` here is xoshiro256++
//! seeded through SplitMix64 — a different stream than upstream's ChaCha12,
//! but fully deterministic for a given `seed_from_u64` input, which is the
//! property the workspace's determinism guarantees actually rely on.

#![deny(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's natural unit domain).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the exclusive bound.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as StandardSample>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Sp: SampleRange<T>>(&mut self, range: Sp) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// `StdRng`; same seeding API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard cheap.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
