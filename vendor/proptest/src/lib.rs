//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`strategy::Strategy`] trait (ranges, tuples,
//! `collection::vec`, `option::of`, `sample::select`, a tiny
//! regex-pattern string strategy), the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros, and `ProptestConfig`.
//!
//! Differences from upstream, deliberate for an offline, deterministic CI:
//! no shrinking (a failing case panics with its debug representation), and
//! the per-test RNG is seeded from the test's name, so every run explores
//! the identical case sequence.

#![deny(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (only `cases` is interpreted).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; it is retried,
        /// not counted as a failure.
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
                TestCaseError::Fail(msg) => write!(f, "case failed: {msg}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies. Deterministically seeded from the
    /// test name so reruns explore the identical sequence of cases.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// How many times rejection-style strategies retry before giving up.
    const MAX_LOCAL_REJECTS: usize = 1024;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        fn prop_filter_map<U, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_LOCAL_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("strategy rejected too many candidates: {}", self.reason);
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_LOCAL_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("strategy rejected too many candidates: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    }

    /// `&str` patterns act as a tiny regex-flavoured string strategy:
    /// `CLASS{lo,hi}` repeats a character class, where the class is `\PC`
    /// (any printable char), a `[a-z]`-style ASCII class, or a literal
    /// character. Anything else falls back to the pattern-as-literal.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        if let Some((class, lo, hi)) = split_repeat(pattern) {
            let len = rng.0.gen_range(lo..=hi);
            (0..len).map(|_| sample_class(class, rng)).collect()
        } else {
            pattern.to_string()
        }
    }

    /// Splits `CLASS{lo,hi}` into its parts; `None` if the pattern has no
    /// trailing repetition.
    fn split_repeat(pattern: &str) -> Option<(&str, usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let brace = body.rfind('{')?;
        let (class, counts) = (&body[..brace], &body[brace + 1..]);
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((class, lo, hi))
    }

    fn sample_class(class: &str, rng: &mut TestRng) -> char {
        match class {
            // `\PC` — "not a control/unassigned character": printable.
            // Mostly ASCII with occasional non-ASCII to stress UTF-8
            // handling in lexers.
            "\\PC" => {
                if rng.0.gen_bool(0.9) {
                    rng.0.gen_range(0x20u32..0x7F) as u8 as char
                } else {
                    const EXOTIC: &[char] = &['é', 'λ', '中', '😀', '±', '∞', '"', '\\'];
                    EXOTIC[rng.0.gen_range(0..EXOTIC.len())]
                }
            }
            class if class.starts_with('[') && class.ends_with(']') => {
                let inner = &class[1..class.len() - 1];
                let mut choices: Vec<char> = Vec::new();
                let chars: Vec<char> = inner.chars().collect();
                let mut i = 0;
                while i < chars.len() {
                    if i + 2 < chars.len() && chars[i + 1] == '-' {
                        let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in a..=b {
                            if let Some(c) = char::from_u32(c) {
                                choices.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                if choices.is_empty() {
                    'a'
                } else {
                    choices[rng.0.gen_range(0..choices.len())]
                }
            }
            class => {
                let chars: Vec<char> = class.chars().collect();
                if chars.is_empty() {
                    'a'
                } else {
                    chars[rng.0.gen_range(0..chars.len())]
                }
            }
        }
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: strategy::Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl strategy::Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        use rand::Rng;
        rng.0.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $any:ident),*) => {$(
        #[derive(Debug, Clone, Copy)]
        pub struct $any;
        impl strategy::Strategy for $any {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng;
                rng.0.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = $any;
            fn arbitrary() -> $any { $any }
        }
    )*};
}
impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize, i32 => AnyI32, i64 => AnyI64);

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive element-count range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` roughly a quarter of the time, like upstream's default
    /// weighting toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniformly picks one of the given items.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.0.gen_range(0..self.items.len())].clone()
        }
    }
}

/// The `prop::` alias module (mirrors `proptest::prelude::prop`).
pub mod prop {
    pub use crate::{collection, option, sample, strategy};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(32).max(1024) {
                                panic!(
                                    "proptest {}: too many rejected cases ({} rejected, {} passed)",
                                    stringify!($name), rejected, passed
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), left, right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                            stringify!($left), stringify!($right), left, right,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x >= 5);
            prop_assert!(x >= 5);
        }

        #[test]
        fn string_patterns(s in "\\PC{0,80}") {
            prop_assert!(s.chars().count() <= 80);
        }
    }

    #[test]
    fn select_and_map() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("select_and_map");
        let strat = crate::sample::select(vec!["a", "b"]).prop_map(|s| s.to_uppercase());
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!(v == "A" || v == "B");
        }
    }
}
